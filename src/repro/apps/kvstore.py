"""A SILT-style log-structured key-value store indexed by McCuckoo.

The paper motivates McCuckoo with memory-efficient key-value stores
(SILT [6], ChunkStash [5], MemC3 [9]): values live in an append-only log
on flash/disk, and a compact in-memory index maps each key to its log
offset.  The index is the hot, latency-critical structure — exactly the
role McCuckoo is designed for.

:class:`LogStructuredStore` composes the pieces this library already has:

* an append-only :class:`ValueLog` holding (key, value) records;
* a :class:`ResizableMcCuckoo` index mapping key → log offset (growing
  online as the store fills);
* compaction that rewrites only live records into a fresh log;
* crash recovery by replaying the log (the index is rebuilt, not stored).

Everything is in-memory but structured as the real system would be, with
all index traffic accounted through the usual :class:`MemoryModel`.
"""

from __future__ import annotations

import json
import pickle
import struct
import time
import zlib
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..core.config import DeletionMode
from ..core.engine import EngineConfig, EngineLike
from ..core.errors import ReproError, TableFullError
from ..core.resize import ResizableMcCuckoo
from ..core.results import InsertOutcome
from ..core.snapshot import restore_resizable, snapshot_resizable
from ..faults import FaultPlan, InjectedCrash
from ..hashing import Key, KeyLike, canonical_key
from ..memory.model import MemoryModel

_TOMBSTONE = object()

# ----------------------------------------------------------------------
# durable record codec
#
# A serialized record is ``u32 length`` followed by ``length`` bytes:
#   u64 key | u8 kind | u32 value-length | value bytes | u32 crc32
# where the CRC covers everything before it.  ``kind`` tags the value
# payload: raw bytes, UTF-8 string, JSON (other picklable-by-JSON values),
# or a tombstone (empty payload).  The length prefix lets recovery detect
# a torn tail; the CRC detects a torn write that happens to end on a
# record boundary, and bit rot.
# ----------------------------------------------------------------------

_REC_LEN = struct.Struct(">I")
_REC_HEAD = struct.Struct(">QBI")  # key, kind, value length
_REC_CRC = struct.Struct(">I")

_KIND_BYTES = 0
_KIND_STR = 1
_KIND_JSON = 2
_KIND_TOMBSTONE = 3


class CorruptLogError(ReproError):
    """A durable log record failed its CRC away from the torn tail."""


def encode_record(key: Key, value: Any) -> bytes:
    """Serialize one record (``_TOMBSTONE`` sentinel encodes a delete)."""
    if value is _TOMBSTONE:
        kind, payload = _KIND_TOMBSTONE, b""
    elif isinstance(value, (bytes, bytearray, memoryview)):
        kind, payload = _KIND_BYTES, bytes(value)
    elif isinstance(value, str):
        kind, payload = _KIND_STR, value.encode("utf-8")
    else:
        kind, payload = _KIND_JSON, json.dumps(value, sort_keys=True).encode("utf-8")
    body = _REC_HEAD.pack(key, kind, len(payload)) + payload
    body += _REC_CRC.pack(zlib.crc32(body) & 0xFFFFFFFF)
    return _REC_LEN.pack(len(body)) + body


def _decode_value(kind: int, payload: bytes) -> Any:
    if kind == _KIND_BYTES:
        return payload
    if kind == _KIND_STR:
        return payload.decode("utf-8")
    if kind == _KIND_JSON:
        return json.loads(payload.decode("utf-8"))
    assert kind == _KIND_TOMBSTONE
    return _TOMBSTONE


@dataclass
class RecoveryReport:
    """What :meth:`LogStructuredStore.recover_from_bytes` found and did.

    With checkpointed recovery (:meth:`LogStructuredStore.recover_with_checkpoint`)
    the checkpoint/tail split is reported too: ``checkpoint_records`` log
    records were covered by the restored index snapshot and only
    ``tail_records_replayed`` records were replayed into the index.
    """

    records_replayed: int = 0
    tombstones_replayed: int = 0
    live_keys: int = 0
    bytes_scanned: int = 0
    bytes_truncated: int = 0
    torn_tail: bool = False
    checkpoint_loaded: bool = False
    checkpoint_records: int = 0
    tail_records_replayed: int = 0
    checkpoint_invalid: bool = False

    def render(self) -> str:
        base = (
            f"recovered {self.live_keys} live keys from "
            f"{self.records_replayed} records "
            f"({self.tombstones_replayed} tombstones); "
            f"scanned {self.bytes_scanned} bytes, "
            f"truncated {self.bytes_truncated} torn-tail bytes"
        )
        if self.checkpoint_loaded:
            base += (
                f"; checkpoint covered {self.checkpoint_records} records, "
                f"replayed a {self.tail_records_replayed}-record tail"
            )
        elif self.checkpoint_invalid:
            base += "; checkpoint missing/stale/torn -> full replay"
        return base


def scan_log_bytes(data: bytes) -> Tuple[List["LogRecord"], RecoveryReport]:
    """Parse a serialized log, truncating a torn tail instead of raising.

    A record that is cut short (not enough bytes for its declared length,
    or not even a full length prefix) or whose CRC fails *at the tail* is
    treated as a torn write: everything from its start onward is dropped
    and counted in ``bytes_truncated``.  A CRC failure with intact records
    after it is not a torn write and raises :class:`CorruptLogError`.
    """
    records: List[LogRecord] = []
    report = RecoveryReport(bytes_scanned=len(data))
    pos = 0
    while pos < len(data):
        start = pos
        if pos + _REC_LEN.size > len(data):
            break  # torn length prefix
        (length,) = _REC_LEN.unpack_from(data, pos)
        pos += _REC_LEN.size
        if pos + length > len(data):
            pos = start
            break  # torn record body
        body = data[pos : pos + length]
        pos += length
        if length < _REC_HEAD.size + _REC_CRC.size:
            pos = start
            break  # can't even hold a header + CRC: torn garbage tail
        (crc,) = _REC_CRC.unpack(body[-_REC_CRC.size:])
        if crc != (zlib.crc32(body[: -_REC_CRC.size]) & 0xFFFFFFFF):
            if pos < len(data):
                raise CorruptLogError(
                    f"record at byte {start} failed CRC with "
                    f"{len(data) - pos} bytes of log after it"
                )
            pos = start
            break  # tail record with bad CRC: torn write on the boundary
        key, kind, value_length = _REC_HEAD.unpack_from(body)
        payload = body[_REC_HEAD.size : _REC_HEAD.size + value_length]
        if len(payload) != value_length:
            pos = start
            break
        records.append(LogRecord(key, _decode_value(kind, payload), pos - start))
        report.records_replayed += 1
        if records[-1].is_tombstone:
            report.tombstones_replayed += 1
    report.bytes_truncated = len(data) - pos
    report.torn_tail = report.bytes_truncated > 0
    return records, report


@dataclass(frozen=True)
class LogRecord:
    """One appended record; ``value`` is ``_TOMBSTONE`` for deletions.

    ``size`` is the record's serialized footprint in bytes (length prefix
    included) when known — durable logs and :func:`scan_log_bytes` fill it
    in; plain in-memory logs leave it 0.
    """

    key: Key
    value: Any
    size: int = 0

    @property
    def is_tombstone(self) -> bool:
        return self.value is _TOMBSTONE


class ValueLog:
    """Append-only record log with sequential offsets."""

    def __init__(self) -> None:
        self._records: List[LogRecord] = []

    def append(self, key: Key, value: Any, size: int = 0) -> int:
        """Append a record; returns its offset."""
        self._records.append(LogRecord(key, value, size))
        return len(self._records) - 1

    def append_tombstone(self, key: Key) -> int:
        return self.append(key, _TOMBSTONE)

    def read(self, offset: int) -> LogRecord:
        if not 0 <= offset < len(self._records):
            raise IndexError(f"log offset {offset} out of range")
        return self._records[offset]

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> Iterator[Tuple[int, LogRecord]]:
        yield from enumerate(self._records)


class DurableValueLog(ValueLog):
    """A :class:`ValueLog` that also maintains a serialized byte image.

    The image models the on-disk log: every append serializes the record
    and extends the image before the in-memory record list is touched, so
    the image is what a crash would leave behind.  A :class:`FaultPlan`
    consulted at this append/fsync boundary can tear the write (persist
    only a prefix of the record) or crash right after it; either way
    :class:`~repro.faults.InjectedCrash` is raised and the owning store
    must be recovered from :attr:`image_bytes`, not used further.
    """

    def __init__(
        self, faults: Optional[FaultPlan] = None, shard: int = 0
    ) -> None:
        super().__init__()
        self._image = bytearray()
        self._faults = faults
        self._shard = shard
        self._sink = None  # optional real file backing the image
        self._synced = 0  # image bytes already flushed to the sink

    @property
    def image_bytes(self) -> bytes:
        """The serialized log as a crash would find it."""
        return bytes(self._image)

    @property
    def image_size(self) -> int:
        """Byte length of the image without copying it."""
        return len(self._image)

    def attach_faults(self, faults: Optional[FaultPlan], shard: int) -> None:
        self._faults = faults
        self._shard = shard

    def attach_sink(self, sink, already_synced: bool = False) -> None:
        """Mirror the byte image into ``sink`` (a writable binary file).

        Needed when the log must survive the *process*, not just an
        in-memory crash simulation — worker processes attach their durable
        log file here so the supervisor can replay it after a hard kill.
        The current image is written out immediately; the caller owns
        truncation/positioning of the file.  ``already_synced=True`` skips
        that initial write — used after a compaction commit, where the new
        image was already written to a temp file and atomically renamed
        into place (re-writing through a truncating handle would reopen
        the very torn-file window the rename closed).
        """
        self._sink = sink
        self._synced = len(self._image) if already_synced else 0
        self._sync()

    def _sync(self) -> None:
        if self._sink is None or self._synced >= len(self._image):
            return
        self._sink.write(bytes(self._image[self._synced:]))
        self._sink.flush()
        self._synced = len(self._image)

    def append(self, key: Key, value: Any) -> int:
        record = encode_record(key, value)
        fault = self._faults.on_append(self._shard) if self._faults else None
        # The sink flush sits in a finally so an injected torn/crash append
        # still persists exactly the bytes the image says survived — a real
        # crash tears the file the same way it tears the image.
        try:
            if fault is not None and fault.torn:
                keep = fault.keep_bytes
                if keep is None:
                    keep = len(record) // 2
                self._image += record[: max(0, min(keep, len(record) - 1))]
                raise InjectedCrash(
                    f"torn write after {len(self._image)} image bytes "
                    f"(shard {self._shard})"
                )
            self._image += record
            offset = super().append(key, value, len(record))
            if fault is not None and fault.crash:
                raise InjectedCrash(
                    f"crash after append #{offset + 1} (shard {self._shard})"
                )
        finally:
            self._sync()
        return offset


# ----------------------------------------------------------------------
# checkpoint artifact codec
#
# A checkpoint is a self-validating single-slot artifact:
#   MAGIC | u32 length | pickle(payload) | u32 crc32(pickle bytes)
# The payload carries a full index snapshot plus the log position it was
# taken at and ``prefix_crc`` — the CRC of the log image up to that
# position.  Recovery accepts the checkpoint only if the current log's
# prefix still hashes to ``prefix_crc``; compaction rewrites the image, so
# a stale checkpoint self-invalidates and recovery falls back to a full
# replay instead of restoring an index that points into the old layout.
# ----------------------------------------------------------------------

CHECKPOINT_MAGIC = b"MCKP"
_CKPT_LEN = struct.Struct(">I")
_CKPT_CRC = struct.Struct(">I")
CHECKPOINT_VERSION = 1


def encode_checkpoint(payload: Dict[str, Any]) -> bytes:
    """Frame a checkpoint payload dict into a durable artifact."""
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    return (
        CHECKPOINT_MAGIC
        + _CKPT_LEN.pack(len(blob))
        + blob
        + _CKPT_CRC.pack(zlib.crc32(blob) & 0xFFFFFFFF)
    )


def decode_checkpoint(data: Optional[bytes]) -> Optional[Dict[str, Any]]:
    """Parse a checkpoint artifact; ``None`` for missing/torn/corrupt.

    Never raises on bad input — an unreadable checkpoint simply means
    recovery falls back to a full log replay, exactly like no checkpoint.
    """
    if not data:
        return None
    header = len(CHECKPOINT_MAGIC) + _CKPT_LEN.size
    if len(data) < header + _CKPT_CRC.size:
        return None
    if data[: len(CHECKPOINT_MAGIC)] != CHECKPOINT_MAGIC:
        return None
    (length,) = _CKPT_LEN.unpack_from(data, len(CHECKPOINT_MAGIC))
    if header + length + _CKPT_CRC.size > len(data):
        return None  # torn mid-payload
    blob = data[header : header + length]
    (crc,) = _CKPT_CRC.unpack_from(data, header + length)
    if crc != (zlib.crc32(blob) & 0xFFFFFFFF):
        return None
    try:
        payload = pickle.loads(blob)
    except Exception:  # noqa: BLE001 — any unpickling failure = unusable
        return None
    if not isinstance(payload, dict) or payload.get("kind") != "checkpoint":
        return None
    if payload.get("version") != CHECKPOINT_VERSION:
        return None
    return payload


class LogStructuredStore:
    """Append-only KV store with a multi-copy cuckoo index.

    ``get`` costs one index lookup (mostly on-chip at moderate load) plus
    one log read; ``put`` appends and updates the index; ``delete`` appends
    a tombstone and drops the index entry.  ``garbage_ratio`` tracks dead
    log space; :meth:`compact` rewrites live records into a fresh log and
    rebuilds the index mapping in place.
    """

    def __init__(
        self,
        expected_items: int = 1024,
        seed: int = 0,
        mem: Optional[MemoryModel] = None,
        durable: bool = False,
        faults: Optional[FaultPlan] = None,
        shard_id: int = 0,
        engine: EngineLike = None,
        kick_policy: Optional[str] = None,
    ) -> None:
        if expected_items <= 0:
            raise ValueError("expected_items must be positive")
        self.mem = mem if mem is not None else MemoryModel()
        self.engine = EngineConfig.coerce(engine)
        self.kick_policy = kick_policy
        n_buckets = max(8, expected_items // 2)  # d=3 -> ~66 % initial load
        index_kwargs = {}
        if kick_policy is not None:
            index_kwargs["kick_policy"] = kick_policy
        self._index = ResizableMcCuckoo(
            n_buckets,
            d=3,
            seed=seed,
            grow_at=0.85,
            deletion_mode=DeletionMode.RESET,
            mem=self.mem,
            engine=self.engine,
            **index_kwargs,
        )
        self._seed = seed
        self._log = (
            DurableValueLog(faults=faults, shard=shard_id) if durable else ValueLog()
        )
        self._live = 0
        self._faults = faults
        self._shard_id = shard_id
        self._checkpoint: Optional[bytes] = None
        self._last_checkpoint_at: Optional[float] = None
        self._appends_total = 0
        self._appends_at_checkpoint = 0
        self.compactions = 0
        self.checkpoints = 0
        self.records_dropped = 0
        self.recovery_report: Optional[RecoveryReport] = None
        """Set on stores produced by :meth:`recover`/:meth:`recover_from_bytes`."""

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------

    def put(self, key: KeyLike, value: Any) -> InsertOutcome:
        """Insert or update: points the index at the record, then appends.

        The index is updated *before* the log append (against the
        prospective offset, which is just the current log length) so a
        raising or failing index insert cannot leak an unreachable log
        record — leaked records would never be reclaimed and would skew
        ``garbage_ratio``.  The append itself is infallible.
        """
        k = canonical_key(key)
        offset = len(self._log)
        outcome = self._index.try_update(k, offset)
        if outcome is None:
            outcome = self._index.put(k, offset)
            if outcome.failed:
                raise TableFullError(
                    f"index rejected key {k:#x}; store holds {self._live} items"
                )
            self._live += 1
        self._log.append(k, value)
        self._appends_total += 1
        return outcome

    def get(self, key: KeyLike, default: Any = None) -> Any:
        k = canonical_key(key)
        lookup = self._index.lookup(k)
        if not lookup.found:
            return default
        self.mem.offchip_read("value-log")
        record = self._log.read(lookup.value)
        assert record.key == k and not record.is_tombstone
        return record.value

    def get_many(self, keys: List[KeyLike], default: Any = None) -> List[Any]:
        """Batched :meth:`get`: one value (or ``default``) per key, in order.

        Index probes go through the batched lookup kernel; the log reads
        for the hits are charged in a single accounting call, so the
        off-chip totals equal a loop of scalar ``get`` calls.
        """
        ks = [canonical_key(key) for key in keys]
        return self._read_values(ks, self._index.lookup_many(ks), default)

    def get_many_u64(self, keys_u64: Any, default: Any = None) -> List[Any]:
        """:meth:`get_many` over an already-canonical ``uint64`` key array.

        Transport fast path: wire keys are u64 by construction, so the
        array (typically a zero-copy view over a shared-memory ring slot)
        feeds the index's vectorized kernel directly — no per-key
        canonicalization, no array rebuild.
        """
        lookups = self._index.lookup_many_u64(keys_u64)
        return self._read_values(keys_u64.tolist(), lookups, default)

    def _read_values(self, ks: List[int], lookups: List[Any], default: Any) -> List[Any]:
        """Shared log-read tail of the batched get paths: the hits are
        charged in a single accounting call, so the off-chip totals equal
        a loop of scalar ``get`` calls."""
        hits = sum(1 for lookup in lookups if lookup.found)
        if hits:
            self.mem.offchip_read("value-log", hits)
        out: List[Any] = []
        for k, lookup in zip(ks, lookups):
            if not lookup.found:
                out.append(default)
                continue
            record = self._log.read(lookup.value)
            assert record.key == k and not record.is_tombstone
            out.append(record.value)
        return out

    def __contains__(self, key: KeyLike) -> bool:
        return self._index.lookup(canonical_key(key)).found

    def delete(self, key: KeyLike) -> bool:
        k = canonical_key(key)
        if not self._index.delete(k).deleted:
            return False
        self._log.append_tombstone(k)
        self._appends_total += 1
        self._live -= 1
        return True

    def __len__(self) -> int:
        return self._live

    def items(self) -> Iterator[Tuple[Key, Any]]:
        for key, offset in self._index.items():
            yield key, self._log.read(offset).value

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    @property
    def log_records(self) -> int:
        return len(self._log)

    @property
    def garbage_ratio(self) -> float:
        """Fraction of log records that are dead (superseded or tombstones)."""
        if not len(self._log):
            return 0.0
        return 1.0 - self._live / len(self._log)

    @property
    def log_size(self) -> int:
        """Serialized log size in bytes (0 for a non-durable store)."""
        if isinstance(self._log, DurableValueLog):
            return self._log.image_size
        return 0

    @property
    def dead_bytes(self) -> int:
        """Bytes of the durable image held by dead records (0 if not durable).

        Computed from the log, not tracked incrementally: live bytes are
        the summed sizes of the records the index still points at, dead is
        the rest.  O(live) per call — this backs a stats gauge and the
        compaction policy, neither of which sits on the hot path.
        """
        if not isinstance(self._log, DurableValueLog):
            return 0
        live = sum(
            self._log.read(offset).size for _, offset in self._index.items()
        )
        return self._log.image_size - live

    @property
    def appends_since_checkpoint(self) -> int:
        """Log appends since the last successful checkpoint (or creation)."""
        return self._appends_total - self._appends_at_checkpoint

    def compact(self) -> int:
        """Rewrite live records into a fresh log; returns records dropped.

        Offsets change, so every surviving key's index entry is updated in
        place (all copies rewritten — an ordinary ``try_update``).  The
        actual rewrite lives in :class:`repro.maintenance.Compactor`
        (imported lazily to keep the package layering one-way), which also
        honours ``crash_during_compaction`` fault rules and keeps the old
        log image authoritative until the commit swap.
        """
        from ..maintenance.compactor import Compactor

        return Compactor().compact(self)

    # ------------------------------------------------------------------
    # checkpoints
    # ------------------------------------------------------------------

    def take_checkpoint(self) -> bytes:
        """Serialize a checkpoint of the index against the current log.

        The artifact is stored on the store (the single checkpoint slot a
        crash would find — see :attr:`checkpoint_bytes`) and returned so a
        caller can also persist it to a real file.  A ``torn_checkpoint``
        fault rule tears the slot and raises :class:`InjectedCrash`; the
        torn artifact fails CRC validation at recovery time and recovery
        falls back to a full log replay.
        """
        image = self.log_bytes
        payload = {
            "version": CHECKPOINT_VERSION,
            "kind": "checkpoint",
            "shard_id": self._shard_id,
            "seed": self._seed,
            "log_position": len(image),
            "log_records": len(self._log),
            "live": self._live,
            "prefix_crc": zlib.crc32(image) & 0xFFFFFFFF,
            "index": snapshot_resizable(self._index),
        }
        artifact = encode_checkpoint(payload)
        fault = (
            self._faults.on_checkpoint_write(self._shard_id)
            if self._faults is not None
            else None
        )
        if fault is not None and fault.torn:
            keep = fault.keep_bytes
            if keep is None:
                keep = len(artifact) // 2
            self._checkpoint = artifact[: max(0, min(keep, len(artifact) - 1))]
            raise InjectedCrash(
                f"torn checkpoint after {len(self._checkpoint)} of "
                f"{len(artifact)} bytes (shard {self._shard_id})"
            )
        self._checkpoint = artifact
        self.checkpoints += 1
        self._last_checkpoint_at = time.monotonic()
        self._appends_at_checkpoint = self._appends_total
        return artifact

    @property
    def checkpoint_bytes(self) -> Optional[bytes]:
        """The latest checkpoint artifact as a crash would find it (the
        slot holds a torn prefix after an injected torn checkpoint)."""
        return self._checkpoint

    def clear_checkpoint(self) -> None:
        self._checkpoint = None
        self._appends_at_checkpoint = self._appends_total

    @property
    def last_checkpoint_age_s(self) -> float:
        """Seconds since the last successful checkpoint; -1.0 if none."""
        if self._last_checkpoint_at is None:
            return -1.0
        return time.monotonic() - self._last_checkpoint_at

    @property
    def durable(self) -> bool:
        return isinstance(self._log, DurableValueLog)

    @property
    def shard_id(self) -> int:
        return self._shard_id

    def attach_log_sink(self, sink, already_synced: bool = False) -> None:
        """Mirror the durable log's byte image into a writable binary file
        (see :meth:`DurableValueLog.attach_sink`).  Raises on a non-durable
        store — there is no image to mirror."""
        if not isinstance(self._log, DurableValueLog):
            raise ValueError("attach_log_sink requires a durable store")
        self._log.attach_sink(sink, already_synced=already_synced)

    @property
    def log_bytes(self) -> bytes:
        """The serialized log — the crash image for a durable store.

        A non-durable store serializes its in-memory records on demand, so
        recovery tooling works uniformly over both.
        """
        if isinstance(self._log, DurableValueLog):
            return self._log.image_bytes
        return b"".join(
            encode_record(record.key, record.value)
            for _, record in self._log.records()
        )

    def recover(self) -> "LogStructuredStore":
        """Crash recovery: rebuild a store by replaying this store's log.

        The index is volatile in a real deployment; the log is the source
        of truth.  Replay first reduces the log to its *final* state (last
        record per key wins, tombstones erase) and loads only live records,
        so the recovered store starts with an all-live log and a zero
        ``garbage_ratio`` — replaying deletes verbatim would append fresh
        tombstones to the new log.  A torn tail record (an append cut short
        by a crash) is truncated, not raised on; what happened is recorded
        on the returned store's ``recovery_report``.  Returns the recovered
        store (self is untouched).
        """
        try:
            data = self.log_bytes
        except (TypeError, ValueError):
            # values the record codec can't serialize (arbitrary objects in
            # a non-durable store): replay the in-memory records verbatim
            records = [record for _, record in self._log.records()]
            report = RecoveryReport(
                records_replayed=len(records),
                tombstones_replayed=sum(1 for r in records if r.is_tombstone),
            )
            return self._rebuild(
                records,
                report,
                durable=False,
                seed=self._seed,
                engine=self.engine,
                kick_policy=self.kick_policy,
            )
        return self.recover_from_bytes(
            data,
            durable=self.durable,
            seed=self._seed,
            engine=self.engine,
            kick_policy=self.kick_policy,
        )

    @classmethod
    def recover_from_bytes(
        cls,
        data: bytes,
        expected_items: int = 1024,
        seed: int = 1,
        durable: bool = True,
        faults: Optional[FaultPlan] = None,
        shard_id: int = 0,
        engine: EngineLike = None,
        kick_policy: Optional[str] = None,
    ) -> "LogStructuredStore":
        """Rebuild a store from a serialized (possibly torn) log image.

        This is the real crash path: the in-memory index and record list
        are gone, only the bytes that reached the log survive.  The scan
        truncates a torn tail (see :func:`scan_log_bytes`); the returned
        store carries the :class:`RecoveryReport` in ``recovery_report``.
        """
        records, report = scan_log_bytes(data)
        return cls._rebuild(
            records,
            report,
            expected_items=expected_items,
            seed=seed,
            durable=durable,
            faults=faults,
            shard_id=shard_id,
            engine=engine,
            kick_policy=kick_policy,
        )

    @classmethod
    def open_from_bytes(
        cls,
        data: bytes,
        expected_items: int = 1024,
        seed: int = 1,
        durable: bool = True,
        engine: EngineLike = None,
        kick_policy: Optional[str] = None,
    ) -> "LogStructuredStore":
        """Load a log image *verbatim*: every surviving record is kept in
        the in-memory image byte-for-byte (minus a torn tail), with the
        index built by replaying records in order.

        Unlike :meth:`recover_from_bytes` — which reduces the history to
        final state and re-appends only live records — this preserves the
        exact on-disk byte sequence, so a checkpoint taken from the loaded
        store validates against the original file.  The offline CLI verbs
        (``repro compact`` / ``repro checkpoint``) go through here.
        """
        records, report = scan_log_bytes(data)
        store = cls(
            expected_items=max(expected_items, len(records), 1),
            seed=seed,
            mem=MemoryModel(),
            durable=durable,
            engine=engine,
            kick_policy=kick_policy,
        )
        kept = len(data) - report.bytes_truncated
        if isinstance(store._log, DurableValueLog):
            store._log._image = bytearray(data[:kept])
        store._log._records = list(records)
        store._appends_total = len(records)
        index = store._index
        for offset, record in enumerate(records):
            if record.is_tombstone:
                if index.delete(record.key).deleted:
                    store._live -= 1
                continue
            outcome = index.try_update(record.key, offset)
            if outcome is None:
                outcome = index.put(record.key, offset)
                if outcome.failed:
                    raise TableFullError(
                        f"index rejected key {record.key:#x} during load"
                    )
                store._live += 1
        report.live_keys = store._live
        store.recovery_report = report
        return store

    @classmethod
    def recover_with_checkpoint(
        cls,
        data: bytes,
        checkpoint: Optional[bytes],
        expected_items: int = 1024,
        seed: int = 1,
        durable: bool = True,
        faults: Optional[FaultPlan] = None,
        shard_id: int = 0,
        engine: EngineLike = None,
        kick_policy: Optional[str] = None,
    ) -> "LogStructuredStore":
        """Checkpointed crash recovery: restore the index, replay the tail.

        The checkpoint is trusted only if it validates end to end: artifact
        CRC intact, its ``log_position`` within the current image, and the
        image prefix up to that position hashing to the recorded
        ``prefix_crc`` (compaction rewrites the image, so stale checkpoints
        self-invalidate here).  On success the index snapshot is restored
        bit-for-bit — no re-insertion of checkpointed records — and only
        the post-checkpoint tail is replayed.  The log image is kept
        *verbatim* (minus a torn tail), so a later checkpoint of the
        recovered store still matches the same durable file.  On any
        validation failure this falls back to :meth:`recover_from_bytes`
        and flags ``checkpoint_invalid`` in the report.
        """
        payload = decode_checkpoint(checkpoint)
        position = payload["log_position"] if payload else -1
        if (
            payload is None
            or not 0 <= position <= len(data)
            or (zlib.crc32(data[:position]) & 0xFFFFFFFF) != payload["prefix_crc"]
        ):
            recovered = cls.recover_from_bytes(
                data,
                expected_items=expected_items,
                seed=seed,
                durable=durable,
                faults=faults,
                shard_id=shard_id,
                engine=engine,
                kick_policy=kick_policy,
            )
            if checkpoint is not None:
                recovered.recovery_report.checkpoint_invalid = True
            return recovered

        # Cheap prefix decode: parse records for log reads, no index work.
        prefix_records, prefix_report = scan_log_bytes(data[:position])
        if prefix_report.torn_tail or len(prefix_records) != payload["log_records"]:
            # The prefix CRC matched but the records don't line up with the
            # checkpoint's accounting — treat the artifact as unusable.
            recovered = cls.recover_from_bytes(
                data,
                expected_items=expected_items,
                seed=seed,
                durable=durable,
                faults=faults,
                shard_id=shard_id,
                engine=engine,
                kick_policy=kick_policy,
            )
            recovered.recovery_report.checkpoint_invalid = True
            return recovered
        tail_records, tail_report = scan_log_bytes(data[position:])

        mem = MemoryModel()
        coerced = EngineConfig.coerce(engine)
        index = restore_resizable(payload["index"], mem=mem, engine=coerced)

        recovered = cls.__new__(cls)
        recovered.mem = mem
        recovered.engine = coerced
        recovered.kick_policy = kick_policy
        recovered._index = index
        recovered._seed = seed
        recovered._live = payload["live"]
        recovered._faults = None
        recovered._shard_id = shard_id
        recovered._last_checkpoint_at = time.monotonic()
        recovered.compactions = 0
        recovered.checkpoints = 0
        recovered.records_dropped = 0

        kept = len(data) - tail_report.bytes_truncated
        log = DurableValueLog(shard=shard_id) if durable else ValueLog()
        if isinstance(log, DurableValueLog):
            log._image = bytearray(data[:kept])
        log._records = list(prefix_records) + list(tail_records)
        recovered._log = log
        recovered._appends_total = len(log._records)
        recovered._appends_at_checkpoint = payload["log_records"]
        # The checkpoint is still valid for the recovered store (same image
        # prefix), so keep it: repeated crashes stay cheap to recover.
        recovered._checkpoint = checkpoint

        report = RecoveryReport(
            records_replayed=len(log._records),
            tombstones_replayed=(
                prefix_report.tombstones_replayed + tail_report.tombstones_replayed
            ),
            bytes_scanned=len(data),
            bytes_truncated=tail_report.bytes_truncated,
            torn_tail=tail_report.torn_tail,
            checkpoint_loaded=True,
            checkpoint_records=payload["log_records"],
            tail_records_replayed=len(tail_records),
        )

        # Replay only the tail into the restored index.
        base = payload["log_records"]
        for i, record in enumerate(tail_records):
            if record.is_tombstone:
                if index.delete(record.key).deleted:
                    recovered._live -= 1
                continue
            offset = base + i
            outcome = index.try_update(record.key, offset)
            if outcome is None:
                outcome = index.put(record.key, offset)
                if outcome.failed:
                    raise TableFullError(
                        f"index rejected key {record.key:#x} during tail replay"
                    )
                recovered._live += 1
        report.live_keys = recovered._live

        if faults is not None:
            recovered._faults = faults
            if isinstance(recovered._log, DurableValueLog):
                recovered._log.attach_faults(faults, shard_id)
        recovered.recovery_report = report
        return recovered

    @classmethod
    def _rebuild(
        cls,
        records: List[LogRecord],
        report: RecoveryReport,
        expected_items: int = 1024,
        seed: int = 1,
        durable: bool = False,
        faults: Optional[FaultPlan] = None,
        shard_id: int = 0,
        engine: EngineLike = None,
        kick_policy: Optional[str] = None,
    ) -> "LogStructuredStore":
        """Reduce replayed records to final state and load a fresh store."""
        final: Dict[Key, Any] = {}
        for record in records:
            if record.is_tombstone:
                final.pop(record.key, None)
            else:
                final[record.key] = record.value
        report.live_keys = len(final)
        # replay with faults detached: recovery itself must never be torn
        # by the plan that killed the previous incarnation
        recovered = cls(
            expected_items=max(expected_items, len(final), 1),
            seed=seed,
            mem=MemoryModel(),
            durable=durable,
            shard_id=shard_id,
            engine=engine,
            kick_policy=kick_policy,
        )
        for key, value in final.items():
            recovered.put(key, value)
        if faults is not None:
            recovered._faults = faults
            if isinstance(recovered._log, DurableValueLog):
                recovered._log.attach_faults(faults, shard_id)
        recovered.recovery_report = report
        return recovered

    @property
    def index(self) -> ResizableMcCuckoo:
        return self._index
