"""A SILT-style log-structured key-value store indexed by McCuckoo.

The paper motivates McCuckoo with memory-efficient key-value stores
(SILT [6], ChunkStash [5], MemC3 [9]): values live in an append-only log
on flash/disk, and a compact in-memory index maps each key to its log
offset.  The index is the hot, latency-critical structure — exactly the
role McCuckoo is designed for.

:class:`LogStructuredStore` composes the pieces this library already has:

* an append-only :class:`ValueLog` holding (key, value) records;
* a :class:`ResizableMcCuckoo` index mapping key → log offset (growing
  online as the store fills);
* compaction that rewrites only live records into a fresh log;
* crash recovery by replaying the log (the index is rebuilt, not stored).

Everything is in-memory but structured as the real system would be, with
all index traffic accounted through the usual :class:`MemoryModel`.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..core.config import DeletionMode
from ..core.engine import EngineConfig, EngineLike
from ..core.errors import ReproError, TableFullError
from ..core.resize import ResizableMcCuckoo
from ..core.results import InsertOutcome
from ..faults import FaultPlan, InjectedCrash
from ..hashing import Key, KeyLike, canonical_key
from ..memory.model import MemoryModel

_TOMBSTONE = object()

# ----------------------------------------------------------------------
# durable record codec
#
# A serialized record is ``u32 length`` followed by ``length`` bytes:
#   u64 key | u8 kind | u32 value-length | value bytes | u32 crc32
# where the CRC covers everything before it.  ``kind`` tags the value
# payload: raw bytes, UTF-8 string, JSON (other picklable-by-JSON values),
# or a tombstone (empty payload).  The length prefix lets recovery detect
# a torn tail; the CRC detects a torn write that happens to end on a
# record boundary, and bit rot.
# ----------------------------------------------------------------------

_REC_LEN = struct.Struct(">I")
_REC_HEAD = struct.Struct(">QBI")  # key, kind, value length
_REC_CRC = struct.Struct(">I")

_KIND_BYTES = 0
_KIND_STR = 1
_KIND_JSON = 2
_KIND_TOMBSTONE = 3


class CorruptLogError(ReproError):
    """A durable log record failed its CRC away from the torn tail."""


def encode_record(key: Key, value: Any) -> bytes:
    """Serialize one record (``_TOMBSTONE`` sentinel encodes a delete)."""
    if value is _TOMBSTONE:
        kind, payload = _KIND_TOMBSTONE, b""
    elif isinstance(value, (bytes, bytearray, memoryview)):
        kind, payload = _KIND_BYTES, bytes(value)
    elif isinstance(value, str):
        kind, payload = _KIND_STR, value.encode("utf-8")
    else:
        kind, payload = _KIND_JSON, json.dumps(value, sort_keys=True).encode("utf-8")
    body = _REC_HEAD.pack(key, kind, len(payload)) + payload
    body += _REC_CRC.pack(zlib.crc32(body) & 0xFFFFFFFF)
    return _REC_LEN.pack(len(body)) + body


def _decode_value(kind: int, payload: bytes) -> Any:
    if kind == _KIND_BYTES:
        return payload
    if kind == _KIND_STR:
        return payload.decode("utf-8")
    if kind == _KIND_JSON:
        return json.loads(payload.decode("utf-8"))
    assert kind == _KIND_TOMBSTONE
    return _TOMBSTONE


@dataclass
class RecoveryReport:
    """What :meth:`LogStructuredStore.recover_from_bytes` found and did."""

    records_replayed: int = 0
    tombstones_replayed: int = 0
    live_keys: int = 0
    bytes_scanned: int = 0
    bytes_truncated: int = 0
    torn_tail: bool = False

    def render(self) -> str:
        return (
            f"recovered {self.live_keys} live keys from "
            f"{self.records_replayed} records "
            f"({self.tombstones_replayed} tombstones); "
            f"scanned {self.bytes_scanned} bytes, "
            f"truncated {self.bytes_truncated} torn-tail bytes"
        )


def scan_log_bytes(data: bytes) -> Tuple[List["LogRecord"], RecoveryReport]:
    """Parse a serialized log, truncating a torn tail instead of raising.

    A record that is cut short (not enough bytes for its declared length,
    or not even a full length prefix) or whose CRC fails *at the tail* is
    treated as a torn write: everything from its start onward is dropped
    and counted in ``bytes_truncated``.  A CRC failure with intact records
    after it is not a torn write and raises :class:`CorruptLogError`.
    """
    records: List[LogRecord] = []
    report = RecoveryReport(bytes_scanned=len(data))
    pos = 0
    while pos < len(data):
        start = pos
        if pos + _REC_LEN.size > len(data):
            break  # torn length prefix
        (length,) = _REC_LEN.unpack_from(data, pos)
        pos += _REC_LEN.size
        if pos + length > len(data):
            pos = start
            break  # torn record body
        body = data[pos : pos + length]
        pos += length
        if length < _REC_HEAD.size + _REC_CRC.size:
            pos = start
            break  # can't even hold a header + CRC: torn garbage tail
        (crc,) = _REC_CRC.unpack(body[-_REC_CRC.size:])
        if crc != (zlib.crc32(body[: -_REC_CRC.size]) & 0xFFFFFFFF):
            if pos < len(data):
                raise CorruptLogError(
                    f"record at byte {start} failed CRC with "
                    f"{len(data) - pos} bytes of log after it"
                )
            pos = start
            break  # tail record with bad CRC: torn write on the boundary
        key, kind, value_length = _REC_HEAD.unpack_from(body)
        payload = body[_REC_HEAD.size : _REC_HEAD.size + value_length]
        if len(payload) != value_length:
            pos = start
            break
        records.append(LogRecord(key, _decode_value(kind, payload)))
        report.records_replayed += 1
        if records[-1].is_tombstone:
            report.tombstones_replayed += 1
    report.bytes_truncated = len(data) - pos
    report.torn_tail = report.bytes_truncated > 0
    return records, report


@dataclass(frozen=True)
class LogRecord:
    """One appended record; ``value`` is ``_TOMBSTONE`` for deletions."""

    key: Key
    value: Any

    @property
    def is_tombstone(self) -> bool:
        return self.value is _TOMBSTONE


class ValueLog:
    """Append-only record log with sequential offsets."""

    def __init__(self) -> None:
        self._records: List[LogRecord] = []

    def append(self, key: Key, value: Any) -> int:
        """Append a record; returns its offset."""
        self._records.append(LogRecord(key, value))
        return len(self._records) - 1

    def append_tombstone(self, key: Key) -> int:
        return self.append(key, _TOMBSTONE)

    def read(self, offset: int) -> LogRecord:
        if not 0 <= offset < len(self._records):
            raise IndexError(f"log offset {offset} out of range")
        return self._records[offset]

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> Iterator[Tuple[int, LogRecord]]:
        yield from enumerate(self._records)


class DurableValueLog(ValueLog):
    """A :class:`ValueLog` that also maintains a serialized byte image.

    The image models the on-disk log: every append serializes the record
    and extends the image before the in-memory record list is touched, so
    the image is what a crash would leave behind.  A :class:`FaultPlan`
    consulted at this append/fsync boundary can tear the write (persist
    only a prefix of the record) or crash right after it; either way
    :class:`~repro.faults.InjectedCrash` is raised and the owning store
    must be recovered from :attr:`image_bytes`, not used further.
    """

    def __init__(
        self, faults: Optional[FaultPlan] = None, shard: int = 0
    ) -> None:
        super().__init__()
        self._image = bytearray()
        self._faults = faults
        self._shard = shard
        self._sink = None  # optional real file backing the image
        self._synced = 0  # image bytes already flushed to the sink

    @property
    def image_bytes(self) -> bytes:
        """The serialized log as a crash would find it."""
        return bytes(self._image)

    def attach_faults(self, faults: Optional[FaultPlan], shard: int) -> None:
        self._faults = faults
        self._shard = shard

    def attach_sink(self, sink) -> None:
        """Mirror the byte image into ``sink`` (a writable binary file).

        Needed when the log must survive the *process*, not just an
        in-memory crash simulation — worker processes attach their durable
        log file here so the supervisor can replay it after a hard kill.
        The current image is written out immediately; the caller owns
        truncation/positioning of the file.
        """
        self._sink = sink
        self._synced = 0
        self._sync()

    def _sync(self) -> None:
        if self._sink is None or self._synced >= len(self._image):
            return
        self._sink.write(bytes(self._image[self._synced:]))
        self._sink.flush()
        self._synced = len(self._image)

    def append(self, key: Key, value: Any) -> int:
        record = encode_record(key, value)
        fault = self._faults.on_append(self._shard) if self._faults else None
        # The sink flush sits in a finally so an injected torn/crash append
        # still persists exactly the bytes the image says survived — a real
        # crash tears the file the same way it tears the image.
        try:
            if fault is not None and fault.torn:
                keep = fault.keep_bytes
                if keep is None:
                    keep = len(record) // 2
                self._image += record[: max(0, min(keep, len(record) - 1))]
                raise InjectedCrash(
                    f"torn write after {len(self._image)} image bytes "
                    f"(shard {self._shard})"
                )
            self._image += record
            offset = super().append(key, value)
            if fault is not None and fault.crash:
                raise InjectedCrash(
                    f"crash after append #{offset + 1} (shard {self._shard})"
                )
        finally:
            self._sync()
        return offset


class LogStructuredStore:
    """Append-only KV store with a multi-copy cuckoo index.

    ``get`` costs one index lookup (mostly on-chip at moderate load) plus
    one log read; ``put`` appends and updates the index; ``delete`` appends
    a tombstone and drops the index entry.  ``garbage_ratio`` tracks dead
    log space; :meth:`compact` rewrites live records into a fresh log and
    rebuilds the index mapping in place.
    """

    def __init__(
        self,
        expected_items: int = 1024,
        seed: int = 0,
        mem: Optional[MemoryModel] = None,
        durable: bool = False,
        faults: Optional[FaultPlan] = None,
        shard_id: int = 0,
        engine: EngineLike = None,
    ) -> None:
        if expected_items <= 0:
            raise ValueError("expected_items must be positive")
        self.mem = mem if mem is not None else MemoryModel()
        self.engine = EngineConfig.coerce(engine)
        n_buckets = max(8, expected_items // 2)  # d=3 -> ~66 % initial load
        self._index = ResizableMcCuckoo(
            n_buckets,
            d=3,
            seed=seed,
            grow_at=0.85,
            deletion_mode=DeletionMode.RESET,
            mem=self.mem,
            engine=self.engine,
        )
        self._seed = seed
        self._log = (
            DurableValueLog(faults=faults, shard=shard_id) if durable else ValueLog()
        )
        self._live = 0
        self.recovery_report: Optional[RecoveryReport] = None
        """Set on stores produced by :meth:`recover`/:meth:`recover_from_bytes`."""

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------

    def put(self, key: KeyLike, value: Any) -> InsertOutcome:
        """Insert or update: points the index at the record, then appends.

        The index is updated *before* the log append (against the
        prospective offset, which is just the current log length) so a
        raising or failing index insert cannot leak an unreachable log
        record — leaked records would never be reclaimed and would skew
        ``garbage_ratio``.  The append itself is infallible.
        """
        k = canonical_key(key)
        offset = len(self._log)
        outcome = self._index.try_update(k, offset)
        if outcome is None:
            outcome = self._index.put(k, offset)
            if outcome.failed:
                raise TableFullError(
                    f"index rejected key {k:#x}; store holds {self._live} items"
                )
            self._live += 1
        self._log.append(k, value)
        return outcome

    def get(self, key: KeyLike, default: Any = None) -> Any:
        k = canonical_key(key)
        lookup = self._index.lookup(k)
        if not lookup.found:
            return default
        self.mem.offchip_read("value-log")
        record = self._log.read(lookup.value)
        assert record.key == k and not record.is_tombstone
        return record.value

    def get_many(self, keys: List[KeyLike], default: Any = None) -> List[Any]:
        """Batched :meth:`get`: one value (or ``default``) per key, in order.

        Index probes go through the batched lookup kernel; the log reads
        for the hits are charged in a single accounting call, so the
        off-chip totals equal a loop of scalar ``get`` calls.
        """
        ks = [canonical_key(key) for key in keys]
        lookups = self._index.lookup_many(ks)
        hits = sum(1 for lookup in lookups if lookup.found)
        if hits:
            self.mem.offchip_read("value-log", hits)
        out: List[Any] = []
        for k, lookup in zip(ks, lookups):
            if not lookup.found:
                out.append(default)
                continue
            record = self._log.read(lookup.value)
            assert record.key == k and not record.is_tombstone
            out.append(record.value)
        return out

    def __contains__(self, key: KeyLike) -> bool:
        return self._index.lookup(canonical_key(key)).found

    def delete(self, key: KeyLike) -> bool:
        k = canonical_key(key)
        if not self._index.delete(k).deleted:
            return False
        self._log.append_tombstone(k)
        self._live -= 1
        return True

    def __len__(self) -> int:
        return self._live

    def items(self) -> Iterator[Tuple[Key, Any]]:
        for key, offset in self._index.items():
            yield key, self._log.read(offset).value

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    @property
    def log_records(self) -> int:
        return len(self._log)

    @property
    def garbage_ratio(self) -> float:
        """Fraction of log records that are dead (superseded or tombstones)."""
        if not len(self._log):
            return 0.0
        return 1.0 - self._live / len(self._log)

    def compact(self) -> int:
        """Rewrite live records into a fresh log; returns records dropped.

        Offsets change, so every surviving key's index entry is updated in
        place (all copies rewritten — an ordinary ``try_update``).
        """
        old_size = len(self._log)
        fresh = ValueLog()
        for key, offset in list(self._index.items()):
            record = self._log.read(offset)
            new_offset = fresh.append(record.key, record.value)
            updated = self._index.try_update(key, new_offset)
            assert updated is not None
        self._log = fresh
        return old_size - len(self._log)

    @property
    def durable(self) -> bool:
        return isinstance(self._log, DurableValueLog)

    def attach_log_sink(self, sink) -> None:
        """Mirror the durable log's byte image into a writable binary file
        (see :meth:`DurableValueLog.attach_sink`).  Raises on a non-durable
        store — there is no image to mirror."""
        if not isinstance(self._log, DurableValueLog):
            raise ValueError("attach_log_sink requires a durable store")
        self._log.attach_sink(sink)

    @property
    def log_bytes(self) -> bytes:
        """The serialized log — the crash image for a durable store.

        A non-durable store serializes its in-memory records on demand, so
        recovery tooling works uniformly over both.
        """
        if isinstance(self._log, DurableValueLog):
            return self._log.image_bytes
        return b"".join(
            encode_record(record.key, record.value)
            for _, record in self._log.records()
        )

    def recover(self) -> "LogStructuredStore":
        """Crash recovery: rebuild a store by replaying this store's log.

        The index is volatile in a real deployment; the log is the source
        of truth.  Replay first reduces the log to its *final* state (last
        record per key wins, tombstones erase) and loads only live records,
        so the recovered store starts with an all-live log and a zero
        ``garbage_ratio`` — replaying deletes verbatim would append fresh
        tombstones to the new log.  A torn tail record (an append cut short
        by a crash) is truncated, not raised on; what happened is recorded
        on the returned store's ``recovery_report``.  Returns the recovered
        store (self is untouched).
        """
        try:
            data = self.log_bytes
        except (TypeError, ValueError):
            # values the record codec can't serialize (arbitrary objects in
            # a non-durable store): replay the in-memory records verbatim
            records = [record for _, record in self._log.records()]
            report = RecoveryReport(
                records_replayed=len(records),
                tombstones_replayed=sum(1 for r in records if r.is_tombstone),
            )
            return self._rebuild(
                records, report, durable=False, seed=self._seed, engine=self.engine
            )
        return self.recover_from_bytes(
            data, durable=self.durable, seed=self._seed, engine=self.engine
        )

    @classmethod
    def recover_from_bytes(
        cls,
        data: bytes,
        expected_items: int = 1024,
        seed: int = 1,
        durable: bool = True,
        faults: Optional[FaultPlan] = None,
        shard_id: int = 0,
        engine: EngineLike = None,
    ) -> "LogStructuredStore":
        """Rebuild a store from a serialized (possibly torn) log image.

        This is the real crash path: the in-memory index and record list
        are gone, only the bytes that reached the log survive.  The scan
        truncates a torn tail (see :func:`scan_log_bytes`); the returned
        store carries the :class:`RecoveryReport` in ``recovery_report``.
        """
        records, report = scan_log_bytes(data)
        return cls._rebuild(
            records,
            report,
            expected_items=expected_items,
            seed=seed,
            durable=durable,
            faults=faults,
            shard_id=shard_id,
            engine=engine,
        )

    @classmethod
    def _rebuild(
        cls,
        records: List[LogRecord],
        report: RecoveryReport,
        expected_items: int = 1024,
        seed: int = 1,
        durable: bool = False,
        faults: Optional[FaultPlan] = None,
        shard_id: int = 0,
        engine: EngineLike = None,
    ) -> "LogStructuredStore":
        """Reduce replayed records to final state and load a fresh store."""
        final: Dict[Key, Any] = {}
        for record in records:
            if record.is_tombstone:
                final.pop(record.key, None)
            else:
                final[record.key] = record.value
        report.live_keys = len(final)
        # replay with faults detached: recovery itself must never be torn
        # by the plan that killed the previous incarnation
        recovered = cls(
            expected_items=max(expected_items, len(final), 1),
            seed=seed,
            mem=MemoryModel(),
            durable=durable,
            shard_id=shard_id,
            engine=engine,
        )
        for key, value in final.items():
            recovered.put(key, value)
        if faults is not None and isinstance(recovered._log, DurableValueLog):
            recovered._log.attach_faults(faults, shard_id)
        recovered.recovery_report = report
        return recovered

    @property
    def index(self) -> ResizableMcCuckoo:
        return self._index
