"""A SILT-style log-structured key-value store indexed by McCuckoo.

The paper motivates McCuckoo with memory-efficient key-value stores
(SILT [6], ChunkStash [5], MemC3 [9]): values live in an append-only log
on flash/disk, and a compact in-memory index maps each key to its log
offset.  The index is the hot, latency-critical structure — exactly the
role McCuckoo is designed for.

:class:`LogStructuredStore` composes the pieces this library already has:

* an append-only :class:`ValueLog` holding (key, value) records;
* a :class:`ResizableMcCuckoo` index mapping key → log offset (growing
  online as the store fills);
* compaction that rewrites only live records into a fresh log;
* crash recovery by replaying the log (the index is rebuilt, not stored).

Everything is in-memory but structured as the real system would be, with
all index traffic accounted through the usual :class:`MemoryModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..core.config import DeletionMode
from ..core.errors import TableFullError
from ..core.resize import ResizableMcCuckoo
from ..core.results import InsertOutcome
from ..hashing import Key, KeyLike, canonical_key
from ..memory.model import MemoryModel

_TOMBSTONE = object()


@dataclass(frozen=True)
class LogRecord:
    """One appended record; ``value`` is ``_TOMBSTONE`` for deletions."""

    key: Key
    value: Any

    @property
    def is_tombstone(self) -> bool:
        return self.value is _TOMBSTONE


class ValueLog:
    """Append-only record log with sequential offsets."""

    def __init__(self) -> None:
        self._records: List[LogRecord] = []

    def append(self, key: Key, value: Any) -> int:
        """Append a record; returns its offset."""
        self._records.append(LogRecord(key, value))
        return len(self._records) - 1

    def append_tombstone(self, key: Key) -> int:
        return self.append(key, _TOMBSTONE)

    def read(self, offset: int) -> LogRecord:
        if not 0 <= offset < len(self._records):
            raise IndexError(f"log offset {offset} out of range")
        return self._records[offset]

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> Iterator[Tuple[int, LogRecord]]:
        yield from enumerate(self._records)


class LogStructuredStore:
    """Append-only KV store with a multi-copy cuckoo index.

    ``get`` costs one index lookup (mostly on-chip at moderate load) plus
    one log read; ``put`` appends and updates the index; ``delete`` appends
    a tombstone and drops the index entry.  ``garbage_ratio`` tracks dead
    log space; :meth:`compact` rewrites live records into a fresh log and
    rebuilds the index mapping in place.
    """

    def __init__(
        self,
        expected_items: int = 1024,
        seed: int = 0,
        mem: Optional[MemoryModel] = None,
    ) -> None:
        if expected_items <= 0:
            raise ValueError("expected_items must be positive")
        self.mem = mem if mem is not None else MemoryModel()
        n_buckets = max(8, expected_items // 2)  # d=3 -> ~66 % initial load
        self._index = ResizableMcCuckoo(
            n_buckets,
            d=3,
            seed=seed,
            grow_at=0.85,
            deletion_mode=DeletionMode.RESET,
            mem=self.mem,
        )
        self._log = ValueLog()
        self._live = 0

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------

    def put(self, key: KeyLike, value: Any) -> InsertOutcome:
        """Insert or update: points the index at the record, then appends.

        The index is updated *before* the log append (against the
        prospective offset, which is just the current log length) so a
        raising or failing index insert cannot leak an unreachable log
        record — leaked records would never be reclaimed and would skew
        ``garbage_ratio``.  The append itself is infallible.
        """
        k = canonical_key(key)
        offset = len(self._log)
        outcome = self._index.try_update(k, offset)
        if outcome is None:
            outcome = self._index.put(k, offset)
            if outcome.failed:
                raise TableFullError(
                    f"index rejected key {k:#x}; store holds {self._live} items"
                )
            self._live += 1
        self._log.append(k, value)
        return outcome

    def get(self, key: KeyLike, default: Any = None) -> Any:
        k = canonical_key(key)
        lookup = self._index.lookup(k)
        if not lookup.found:
            return default
        self.mem.offchip_read("value-log")
        record = self._log.read(lookup.value)
        assert record.key == k and not record.is_tombstone
        return record.value

    def get_many(self, keys: List[KeyLike], default: Any = None) -> List[Any]:
        """Batched :meth:`get`: one value (or ``default``) per key, in order.

        Index probes go through the batched lookup kernel; the log reads
        for the hits are charged in a single accounting call, so the
        off-chip totals equal a loop of scalar ``get`` calls.
        """
        ks = [canonical_key(key) for key in keys]
        lookups = self._index.lookup_many(ks)
        hits = sum(1 for lookup in lookups if lookup.found)
        if hits:
            self.mem.offchip_read("value-log", hits)
        out: List[Any] = []
        for k, lookup in zip(ks, lookups):
            if not lookup.found:
                out.append(default)
                continue
            record = self._log.read(lookup.value)
            assert record.key == k and not record.is_tombstone
            out.append(record.value)
        return out

    def __contains__(self, key: KeyLike) -> bool:
        return self._index.lookup(canonical_key(key)).found

    def delete(self, key: KeyLike) -> bool:
        k = canonical_key(key)
        if not self._index.delete(k).deleted:
            return False
        self._log.append_tombstone(k)
        self._live -= 1
        return True

    def __len__(self) -> int:
        return self._live

    def items(self) -> Iterator[Tuple[Key, Any]]:
        for key, offset in self._index.items():
            yield key, self._log.read(offset).value

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    @property
    def log_records(self) -> int:
        return len(self._log)

    @property
    def garbage_ratio(self) -> float:
        """Fraction of log records that are dead (superseded or tombstones)."""
        if not len(self._log):
            return 0.0
        return 1.0 - self._live / len(self._log)

    def compact(self) -> int:
        """Rewrite live records into a fresh log; returns records dropped.

        Offsets change, so every surviving key's index entry is updated in
        place (all copies rewritten — an ordinary ``try_update``).
        """
        old_size = len(self._log)
        fresh = ValueLog()
        for key, offset in list(self._index.items()):
            record = self._log.read(offset)
            new_offset = fresh.append(record.key, record.value)
            updated = self._index.try_update(key, new_offset)
            assert updated is not None
        self._log = fresh
        return old_size - len(self._log)

    def recover(self) -> "LogStructuredStore":
        """Crash recovery: rebuild a store by replaying this store's log.

        The index is volatile in a real deployment; the log is the source
        of truth.  Replay first reduces the log to its *final* state (last
        record per key wins, tombstones erase) and loads only live records,
        so the recovered store starts with an all-live log and a zero
        ``garbage_ratio`` — replaying deletes verbatim would append fresh
        tombstones to the new log.  Returns the recovered store (self is
        untouched).
        """
        final: Dict[Key, Any] = {}
        for _, record in self._log.records():
            if record.is_tombstone:
                final.pop(record.key, None)
            else:
                final[record.key] = record.value
        recovered = LogStructuredStore(
            expected_items=max(1024, len(final)), seed=1, mem=MemoryModel()
        )
        for key, value in final.items():
            recovered.put(key, value)
        return recovered

    @property
    def index(self) -> ResizableMcCuckoo:
        return self._index
