"""Application layers built on the core tables (the paper's motivating uses)."""

from .kvstore import LogRecord, LogStructuredStore, ValueLog

__all__ = ["LogRecord", "LogStructuredStore", "ValueLog"]
