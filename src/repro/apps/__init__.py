"""Application layers built on the core tables (the paper's motivating uses)."""

from .kvstore import (
    CorruptLogError,
    DurableValueLog,
    LogRecord,
    LogStructuredStore,
    RecoveryReport,
    ValueLog,
    encode_record,
    scan_log_bytes,
)

__all__ = [
    "CorruptLogError",
    "DurableValueLog",
    "LogRecord",
    "LogStructuredStore",
    "RecoveryReport",
    "ValueLog",
    "encode_record",
    "scan_log_bytes",
]
