"""McCuckoo: single-slot multi-copy cuckoo hashing (the paper's §III).

A d-ary cuckoo table that stores an item in *all* of its free candidate
buckets and tracks the number of live copies per bucket in an on-chip
2-bit counter array.  The counters drive:

* the insertion principles (occupy every empty candidate; never overwrite a
  sole copy; overwrite redundant copies largest-first while it improves
  redundancy balance — Theorem 1);
* the lookup principles (a zero counter proves absence; candidate buckets
  partitioned by counter value; a partition of size S and value V needs at
  most S−V+1 probes — Theorem 3);
* write-free deletion (only counters are reset);
* stash pre-screening (an item can be in the off-chip stash only if all of
  its candidates still hold sole copies and all of its per-bucket flags are
  set).
"""

from __future__ import annotations

import random
from itertools import repeat
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .._numpy import numpy_or_none
from ..hashing import DEFAULT_FAMILY, MASK64, HashFamily, Key, KeyLike, canonical_key
from ..memory.model import MemoryModel
from ..memory.wear import WearMeter
from .config import DeletionMode, FailurePolicy, SiblingTracking
from .counters import BitArray, PackedArray
from .engine import EngineConfig, EngineLike
from .errors import (
    ConfigurationError,
    InvariantViolationError,
    TableFullError,
    UnsupportedOperationError,
)
from .interface import HashTable
from .policies import KickPolicy, RandomWalkPolicy, make_policy
from .results import DeleteOutcome, InsertOutcome, InsertStatus, LookupOutcome
from .stash import OffChipStash


# Infinite stream of False: stands in for the NumPy front-end's screen and
# all-ones masks when the Python front-end drives the shared scan loop.
_REPEAT_FALSE = repeat(False)


def _counter_bits(d: int) -> int:
    """Smallest packable width that can hold copy counts 0..d."""
    for bits in (1, 2, 4, 8):
        if d <= (1 << bits) - 1:
            return bits
    raise ConfigurationError(f"d={d} is too large for packed counters")


class McCuckoo(HashTable):
    """Multi-copy cuckoo hash table (d sub-tables, one slot per bucket).

    Parameters
    ----------
    n_buckets:
        Buckets per sub-table; total capacity is ``d * n_buckets`` items.
    d:
        Number of hash functions / sub-tables (the paper uses 3).
    maxloop:
        Kick-out budget before an insertion is declared failed.
    stash_buckets:
        Size of the off-chip stash's chained hash (ignored unless
        ``on_failure`` is ``FailurePolicy.STASH``).
    deletion_mode / sibling_tracking / on_failure:
        See :mod:`repro.core.config`.
    engine:
        Batch-kernel execution backend (:class:`~repro.core.engine.EngineConfig`,
        a backend name, or ``None`` for the pure-Python default).  Selecting
        NumPy changes host wall-clock only: outcomes and MemoryModel charges
        are identical by contract.
    """

    name = "McCuckoo"

    def __init__(
        self,
        n_buckets: int,
        d: int = 3,
        family: Optional[HashFamily] = None,
        seed: int = 0,
        maxloop: int = 500,
        kick_policy: Union[KickPolicy, str, None] = None,
        on_failure: FailurePolicy = FailurePolicy.STASH,
        stash_buckets: int = 64,
        deletion_mode: DeletionMode = DeletionMode.DISABLED,
        sibling_tracking: SiblingTracking = SiblingTracking.READ,
        growth_factor: float = 2.0,
        max_rehash_attempts: int = 8,
        mem: Optional[MemoryModel] = None,
        engine: EngineLike = None,
        wear_meter: Optional[WearMeter] = None,
    ) -> None:
        super().__init__(mem)
        if n_buckets <= 0:
            raise ConfigurationError("n_buckets must be positive")
        if d < 2:
            raise ConfigurationError("cuckoo hashing needs d >= 2")
        if maxloop < 0:
            raise ConfigurationError("maxloop must be non-negative")
        if growth_factor < 1.0:
            raise ConfigurationError("growth_factor must be >= 1.0")
        self.d = d
        self.n_buckets = n_buckets
        self.maxloop = maxloop
        self.deletion_mode = deletion_mode
        self.sibling_tracking = sibling_tracking
        self.on_failure = on_failure
        self._family = family or DEFAULT_FAMILY
        self._seed = seed
        self._growth_factor = growth_factor
        self._max_rehash_attempts = max_rehash_attempts
        self.engine = EngineConfig.coerce(engine)
        # Resolve once at construction: backend="numpy" without NumPy fails
        # here, not on the first batch.
        self._engine_numpy = self.engine.resolve() == "numpy"
        self._engine_min_batch = self.engine.min_batch
        self._rng = random.Random(seed ^ 0x5EED)
        if kick_policy is None:
            self._policy: KickPolicy = RandomWalkPolicy()
        elif isinstance(kick_policy, str):
            self._policy = make_policy(kick_policy)
        else:
            self._policy = kick_policy
        # A wear-aware policy needs a meter to read; give it one even if
        # the caller did not ask for wear accounting explicitly.
        if wear_meter is None and getattr(self._policy, "wants_wear", False):
            wear_meter = WearMeter()
        self._wear = wear_meter
        self._stash: Optional[OffChipStash] = None
        if on_failure is FailurePolicy.STASH:
            self._stash = OffChipStash(stash_buckets, self.mem, self._family)
        self._in_rehash = False
        self._rehash_overflow: List[Tuple[Key, Any]] = []
        self.rehash_count = 0
        self.total_kicks = 0
        self._init_storage()

    # ------------------------------------------------------------------
    # storage
    # ------------------------------------------------------------------

    def _init_storage(self) -> None:
        total = self.d * self.n_buckets
        self._functions = self._family.functions(self.d, self._seed)
        self._keys: List[Optional[Key]] = [None] * total
        self._values: List[Any] = [None] * total
        self._counters = PackedArray(
            total, bits=_counter_bits(self.d), mem=self.mem, label="copy-counter"
        )
        # Stash flags physically live with the off-chip buckets: reading one
        # is free alongside a bucket read, setting one is an off-chip write
        # (charged explicitly at the call sites).
        self._flags = BitArray(total, mem=None, label="stash-flag")
        if self.deletion_mode is DeletionMode.TOMBSTONE:
            self._tombstones: Optional[BitArray] = BitArray(
                total, mem=self.mem, label="tombstone"
            )
        else:
            self._tombstones = None
        if self.sibling_tracking is SiblingTracking.METADATA:
            self._masks: Optional[List[int]] = [0] * total
        else:
            self._masks = None
        self._policy.attach(total, self.mem)
        if self._wear is not None:
            self._wear.resize(total)
            attach_wear = getattr(self._policy, "attach_wear", None)
            if attach_wear is not None:
                attach_wear(self._wear)
        self._n_main = 0

    @property
    def capacity(self) -> int:
        return self.d * self.n_buckets

    def __len__(self) -> int:
        return self._n_main + (len(self._stash) if self._stash is not None else 0)

    @property
    def stash(self) -> Optional[OffChipStash]:
        return self._stash

    @property
    def wear_meter(self) -> Optional[WearMeter]:
        """Per-bucket write-wear counts, when wear accounting is attached."""
        return self._wear

    @property
    def main_items(self) -> int:
        """Distinct items living in the main table (excludes the stash)."""
        return self._n_main

    def _candidates(self, key: Key) -> List[int]:
        """Global bucket index of the key's candidate in each sub-table."""
        n = self.n_buckets
        raw = self._family.candidates(self._functions, key, n)
        return [table * n + raw[table] for table in range(self.d)]

    def _position_of(self, bucket: int) -> int:
        """Which sub-table a global bucket index belongs to."""
        return bucket // self.n_buckets

    # -- accounted off-chip bucket access ---------------------------------

    def _read_entry(self, bucket: int) -> Tuple[Optional[Key], Any, bool, int]:
        """Read a bucket: (key, value, stash flag, copy bitmap)."""
        self.mem.offchip_read("bucket")
        mask = self._masks[bucket] if self._masks is not None else 0
        return self._keys[bucket], self._values[bucket], self._flags.test(bucket), mask

    def _write_entry(self, bucket: int, key: Key, value: Any, mask: int) -> None:
        self.mem.offchip_write("bucket")
        if self._wear is not None:
            self._wear.note(bucket)
        self._keys[bucket] = key
        self._values[bucket] = value
        if self._masks is not None:
            self._masks[bucket] = mask

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------

    def put(self, key: KeyLike, value: Any = None) -> InsertOutcome:
        k = self._canonical(key)
        return self._insert_canonical(k, value)

    def _insert_canonical(
        self, k: Key, value: Any, charge_counters: bool = True
    ) -> InsertOutcome:
        cands = self._candidates(k)
        if charge_counters:
            vals = self._counters.get_many(cands)
        else:
            # put_many's deferred phase: the batch already charged these d
            # counter reads, so re-read the (possibly changed) values free.
            vals = [self._counters.peek(bucket) for bucket in cands]
        copies = self._place_by_principles(k, value, cands, vals)
        if copies:
            self._n_main += 1
            return InsertOutcome(InsertStatus.STORED, kicks=0, copies=copies)
        # Every candidate holds the sole copy of another item: a real
        # collision (Table I milestone), resolved by counter-guided kicks.
        self.events.note_collision(len(self) + 1)
        return self._insert_with_kicks(k, value, cands)

    def _mask_for(self, buckets: Sequence[int]) -> int:
        mask = 0
        for bucket in buckets:
            mask |= 1 << self._position_of(bucket)
        return mask

    def _is_free(self, counter_value: int) -> bool:
        # Tombstoned buckets have counter zero and are free for insertion.
        return counter_value == 0

    def _place_by_principles(
        self,
        k: Key,
        value: Any,
        cands: Sequence[int],
        vals: Sequence[int],
        touched: Optional[set] = None,
    ) -> int:
        """Apply insertion principles 1-3; returns copies placed (0 = collision).

        Overwrite targets are claimed one at a time because decrementing a
        victim's sibling counters can change another candidate's value
        mid-insertion (two candidates may hold copies of the same victim).
        ``current`` mirrors the candidates' live counter values locally so
        the principle-3 condition is always evaluated against fresh state.
        ``touched`` collects every bucket whose counter changed —
        ``put_many`` uses it to know which of its pre-read counter values
        have gone stale.
        """
        current: Dict[int, int] = dict(zip(cands, vals))
        free = [bucket for bucket in cands if self._is_free(current[bucket])]
        claimed: List[int] = []
        total = len(free)
        while True:
            overwritable = [
                bucket
                for bucket in cands
                if bucket not in claimed and current[bucket] >= 2
            ]
            if not overwritable:
                break
            top = max(overwritable, key=lambda bucket: current[bucket])
            v = current[top]
            # Principle 3: overwriting must leave the inserted item with no
            # more copies than the overwritten one retains (v-1 >= total+1).
            if v < total + 2:
                break
            decremented = self._claim_overwrite(top, v)
            for bucket in decremented:
                if bucket in current:
                    current[bucket] -= 1
            if touched is not None:
                touched.update(decremented)
            claimed.append(top)
            total += 1
        if total == 0:
            return 0
        positions = free + claimed
        mask = self._mask_for(positions)
        for bucket in positions:
            self._write_entry(bucket, k, value, mask)
            self._counters.set(bucket, total)
            if self._tombstones is not None:
                # Clearing the mark shares the counter word's on-chip write.
                self._tombstones.clear_bit(bucket)
        if touched is not None:
            touched.update(positions)
        return total

    def _claim_overwrite(self, bucket: int, victim_value: int) -> List[int]:
        """Retire the copy in ``bucket``; returns the buckets whose counters
        were decremented (the victim's remaining copies)."""
        victim_key, _, _, victim_mask = self._read_entry(bucket)
        assert victim_key is not None
        return self._decrement_siblings(victim_key, bucket, victim_value, victim_mask)

    def _decrement_siblings(
        self, victim_key: Key, exclude: int, value: int, victim_mask: int
    ) -> List[int]:
        """Drop the victim's remaining copies from ``value`` to ``value - 1``."""
        need = value - 1
        if need == 0:
            return []
        siblings = self._locate_siblings(victim_key, exclude, value, victim_mask)
        if len(siblings) != need:
            raise InvariantViolationError(
                f"item {victim_key:#x} should have {need} sibling copies, "
                f"found {len(siblings)}"
            )
        for bucket in siblings:
            self._counters.set(bucket, value - 1)
            if self._masks is not None:
                # Keep the stored copy bitmap fresh: drop the lost position.
                self._masks[bucket] &= ~(1 << self._position_of(exclude))
                self.mem.offchip_write("mask-fixup")
        return siblings

    def _locate_siblings(
        self, victim_key: Key, exclude: int, value: int, victim_mask: int
    ) -> List[int]:
        others = [b for b in self._candidates(victim_key) if b != exclude]
        if self._masks is not None:
            exclude_pos = self._position_of(exclude)
            return [
                b
                for b in others
                if victim_mask & (1 << self._position_of(b))
                and self._position_of(b) != exclude_pos
            ]
        need = value - 1
        matches = [b for b in others if self._counters.get(b) == value]
        if len(matches) < need:
            raise InvariantViolationError(
                f"counter array inconsistent for item {victim_key:#x}"
            )
        if len(matches) == need:
            return matches
        # Ambiguous: another item coincidentally shares the counter value.
        # Confirm holders with off-chip reads (charged), stopping as soon as
        # the remaining unchecked matches must all be holders.
        confirmed: List[int] = []
        pending = list(matches)
        while len(confirmed) < need:
            if len(pending) == need - len(confirmed):
                confirmed.extend(pending)
                break
            bucket = pending.pop(0)
            stored_key = self._read_entry(bucket)[0]
            if stored_key == victim_key:
                confirmed.append(bucket)
        return confirmed

    def _insert_with_kicks(
        self, k: Key, value: Any, cands: List[int]
    ) -> InsertOutcome:
        kicks = 0
        cur_key, cur_value = k, value
        prev_bucket: Optional[int] = None
        while kicks < self.maxloop:
            choices = [bucket for bucket in cands if bucket != prev_bucket]
            if self._policy.exhausted(choices):
                # Labeled policies (bubbling) can tell the region is stuck;
                # give the displaced item to the failure path immediately
                # instead of burning the rest of maxloop.
                break
            victim_bucket = self._policy.choose(choices, self._rng)
            self._policy.record_eviction(
                victim_bucket, [b for b in cands if b != victim_bucket]
            )
            victim_key, victim_value, _, _ = self._read_entry(victim_bucket)
            assert victim_key is not None
            self._write_entry(
                victim_bucket, cur_key, cur_value, 1 << self._position_of(victim_bucket)
            )
            # The bucket held a sole copy and now holds another sole copy:
            # its counter stays 1, so no on-chip write is needed.
            kicks += 1
            self.total_kicks += 1
            cur_key, cur_value = victim_key, victim_value
            prev_bucket = victim_bucket
            cands = self._candidates(cur_key)
            vals = self._counters.get_many(cands)
            copies = self._place_by_principles(cur_key, cur_value, cands, vals)
            if copies:
                self._n_main += 1
                return InsertOutcome(
                    InsertStatus.STORED, kicks=kicks, copies=copies, collided=True
                )
        # maxloop exhausted: the displaced item (cur) leaves the main table.
        self.events.note_failure(len(self) + 1)
        return self._handle_failure(cur_key, cur_value, cands, kicks)

    def _handle_failure(
        self, key: Key, value: Any, cands: List[int], kicks: int
    ) -> InsertOutcome:
        # The original item is in the table (if any kick happened); `key` is
        # whatever item ended up displaced, so the main table's distinct
        # count is unchanged either way and only the stash/overflow grows.
        if self._in_rehash:
            self._rehash_overflow.append((key, value))
            return InsertOutcome(
                InsertStatus.STORED, kicks=kicks, copies=1, collided=True
            )
        if self._stash is not None:
            for bucket in cands:
                self._flags.mark(bucket)
                self.mem.offchip_write("flag")
            self._stash.add(key, value)
            return InsertOutcome(InsertStatus.STASHED, kicks=kicks, collided=True)
        if self.on_failure is FailurePolicy.REHASH:
            self._rehash_with(key, value)
            return InsertOutcome(
                InsertStatus.STORED, kicks=kicks, copies=1, collided=True
            )
        raise TableFullError(
            f"insertion failed after {kicks} kicks; displaced key {key:#x}"
        )

    # ------------------------------------------------------------------
    # rehashing
    # ------------------------------------------------------------------

    def _drain_main(self) -> List[Tuple[Key, Any]]:
        """Read out every distinct item (charged) and empty the main table."""
        items: List[Tuple[Key, Any]] = []
        seen: set = set()
        for bucket in range(self.capacity):
            if self._counters.peek(bucket) == 0:
                continue
            self.mem.offchip_read("rehash-drain")
            key = self._keys[bucket]
            if key not in seen:
                seen.add(key)
                items.append((key, self._values[bucket]))
        self._n_main = 0
        return items

    def _rehash_with(self, key: Key, value: Any) -> None:
        pending: List[Tuple[Key, Any]] = [(key, value)]
        for _ in range(self._max_rehash_attempts):
            self.rehash_count += 1
            pending = self._drain_main() + pending
            self.n_buckets = max(
                self.n_buckets + 1, int(self.n_buckets * self._growth_factor)
            )
            self._seed += 1
            self._init_storage()
            self._rehash_overflow = []
            self._in_rehash = True
            try:
                for item_key, item_value in pending:
                    self._insert_canonical(item_key, item_value)
            finally:
                self._in_rehash = False
            if not self._rehash_overflow:
                return
            pending = list(self._rehash_overflow)
        raise TableFullError(
            f"rehashing failed {self._max_rehash_attempts} times in a row"
        )

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def _rule1_active(self) -> bool:
        """Whether "a zero counter proves absence" is sound (§III.D)."""
        return self.deletion_mode is not DeletionMode.RESET

    def _never_inserted(self, cands: Sequence[int], vals: Sequence[int]) -> bool:
        """Principle 1: a zero, non-tombstoned counter proves the key was
        never inserted (neither main table nor stash)."""
        if not self._rule1_active():
            return False
        for bucket, v in zip(cands, vals):
            if v == 0:
                if self._tombstones is None:
                    return True
                if not self._tombstones.get(bucket):
                    return True
        return False

    def _partitions(
        self, cands: Sequence[int], vals: Sequence[int]
    ) -> List[Tuple[int, List[int]]]:
        """Non-zero candidates grouped by counter value, largest value first."""
        groups: Dict[int, List[int]] = {}
        for bucket, v in zip(cands, vals):
            if v > 0:
                groups.setdefault(v, []).append(bucket)
        return [(v, groups[v]) for v in sorted(groups, reverse=True)]

    def lookup(self, key: KeyLike) -> LookupOutcome:
        steps = self.lookup_steps(key)
        while True:
            try:
                next(steps)
            except StopIteration as stop:
                return stop.value

    def lookup_steps(self, key: KeyLike):
        """Generator form of :meth:`lookup`: yields once before every
        off-chip access, returning the :class:`LookupOutcome` at the end.

        This is the hook the AMAC-style batch pipeline
        (:mod:`repro.core.batch`) uses to interleave many lookups so their
        off-chip reads overlap; driving the generator straight through is
        exactly a plain lookup.
        """
        k = self._canonical(key)
        cands = self._candidates(k)
        vals = self._counters.get_many(cands)
        if self._never_inserted(cands, vals):
            return LookupOutcome(found=False)
        buckets_read = 0
        flags_read: List[bool] = []
        for v, members in self._partitions(cands, vals):
            if len(members) < v:
                continue  # not enough buckets to carry v copies: skip all
            limit = len(members) - v + 1
            for bucket in members[:limit]:
                yield "bucket"
                stored_key, stored_value, flag, _ = self._read_entry(bucket)
                buckets_read += 1
                flags_read.append(flag)
                if stored_key == k:
                    return LookupOutcome(
                        found=True, value=stored_value, buckets_read=buckets_read
                    )
        if self._stash is None or not self._should_check_stash(vals, flags_read):
            return LookupOutcome(found=False, buckets_read=buckets_read)
        yield "stash"
        found, value = self._stash.lookup(k)
        return LookupOutcome(
            found=found,
            value=value if found else None,
            from_stash=found,
            checked_stash=True,
            buckets_read=buckets_read,
        )

    def _should_check_stash(
        self, vals: Sequence[int], flags_read: Sequence[bool]
    ) -> bool:
        """Stash pre-screen (§III.E/F).

        Without deletions a stashed item's candidates all carried value 1 at
        stash time, counter-1 buckets are never overwritten, and counters
        never silently change — so any other value proves absence from the
        stash.  With deletions enabled only the flags gathered during the
        failed lookup can be trusted.

        An empty stash is never probed: keeping the stash population in an
        on-chip register is free in hardware and spares the conservative
        probe that deletion modes otherwise force on zero-flag lookups.
        """
        if self._stash is not None and len(self._stash) == 0:
            return False
        if self.deletion_mode is DeletionMode.DISABLED:
            if any(v != 1 for v in vals):
                return False
            return all(flags_read) and len(flags_read) > 0
        return all(flags_read)  # vacuously true when nothing was read

    # ------------------------------------------------------------------
    # batched kernels
    # ------------------------------------------------------------------
    #
    # Each kernel returns exactly what the scalar loop would and charges the
    # same access totals (in both charging modes): candidates come from the
    # family's multi-index fast path, counters from one get_block call per
    # batch (lookups) or per key (mutations, which need fresh values), and
    # off-chip bucket reads are accumulated and charged in one record call.
    #
    # Each kernel has two front-ends selected by the table's EngineConfig:
    # the pure-Python one (always available, the default) and a NumPy one
    # that computes the candidate matrix, gathers every counter in one shot
    # and derives the paper's screen/probe plan array-wise.  Both feed the
    # same Python scan over off-chip entries, so backend choice can never
    # change an outcome or a charge — only wall-clock.

    def _use_numpy(self, n_keys: int) -> bool:
        return self._engine_numpy and n_keys >= self._engine_min_batch

    def _bulk_candidates(self, ks: Sequence[Key]) -> Tuple[List[int], List[int]]:
        """Flattened global candidate ids and their counter values for a
        batch of canonical keys — one bulk charged counter read either way."""
        n = self.n_buckets
        d = self.d
        if self._use_numpy(len(ks)):
            np = numpy_or_none()
            mat = self._family.candidates_matrix(
                self._functions, np.array(ks, dtype=np.uint64), n
            )
            mat += np.arange(d, dtype=np.int64) * np.int64(n)
            flat_idx = mat.reshape(-1)
            return flat_idx.tolist(), self._counters.get_block_array(flat_idx).tolist()
        raws = self._family.candidates_many(self._functions, ks, n)
        flat = [table * n + raw[table] for raw in raws for table in range(d)]
        return flat, self._counters.get_block(flat)

    def prescreen_absent(self, keys: Sequence[KeyLike]) -> List[bool]:
        """Principle-1 bulk pre-screen: ``True`` where the counters alone
        prove the key was never inserted, so no off-chip probe (and no
        generator, for the AMAC pipeline) is needed.

        Charges the same d-per-key bulk counter read ``lookup_many``'s
        screen records.  When rule 1 is inactive (RESET deletions) or
        tombstones exist (a zero counter is only conclusive after a charged
        tombstone read) the counters alone cannot screen, so every key is
        conservatively ``False`` and nothing is charged.
        """
        ks = [self._canonical(key) for key in keys]
        if not self._rule1_active() or self._tombstones is not None:
            return [False] * len(ks)
        d = self.d
        _, vals_flat = self._bulk_candidates(ks)
        return [
            0 in vals_flat[base : base + d]
            for base in range(0, len(vals_flat), d)
        ]

    def lookup_many(self, keys: Sequence[KeyLike]) -> List[LookupOutcome]:
        if self._use_numpy(len(keys)):
            np = numpy_or_none()
            if set(map(type, keys)) == {int}:
                # All exact ints: let the uint64 conversion prove they are
                # already canonical (negative or >= 2**64 raises
                # OverflowError), skipping the per-key masking pass.  bool
                # and float subtypes fail the type check, so they reach
                # canonical_key below and error exactly as the scalar path.
                try:
                    arr = np.array(keys, dtype=np.uint64)
                except OverflowError:
                    arr = None
                if arr is not None:
                    ks = keys if type(keys) is list else list(keys)
                    return self._lookup_many_numpy(ks, arr)
            ks = [
                key & MASK64 if type(key) is int else canonical_key(key)
                for key in keys
            ]
            return self._lookup_many_numpy(ks, np.array(ks, dtype=np.uint64))
        # Inline the canonical fast path: int keys dominate every workload.
        ks = [
            key & MASK64 if type(key) is int else canonical_key(key)
            for key in keys
        ]
        d = self.d
        n = self.n_buckets
        raws = self._family.candidates_many(self._functions, ks, n)
        flat = [table * n + raw[table] for raw in raws for table in range(d)]
        vals_flat = self._counters.get_block(flat)
        spans = range(0, len(flat), d)
        return self._scan_lookups(
            ks,
            [flat[base : base + d] for base in spans],
            [vals_flat[base : base + d] for base in spans],
        )

    def lookup_many_u64(self, keys_u64: Any) -> List[LookupOutcome]:
        """Batched lookup over an already-canonical ``uint64`` NumPy array.

        Transport fast path: the serving layer hands wire keys here as a
        zero-copy view over the IPC buffer, so the array feeds
        ``candidates_matrix`` directly — no per-key type check, no
        canonicalization pass, no rebuild of the array from a list.  Wire
        keys are u64 by construction, hence already canonical.
        """
        if self._use_numpy(len(keys_u64)):
            return self._lookup_many_numpy(keys_u64.tolist(), keys_u64)
        return self.lookup_many(keys_u64.tolist())

    def _lookup_many_numpy(self, ks: List[Key], arr: Any) -> List[LookupOutcome]:
        """Vectorized lookup front-end: candidate matrix, one-shot counter
        gather, and the paper's probe plan derived array-wise — rows with a
        zero counter are misses before anything else happens (principle 1),
        rows of all ones are flagged for the single-partition fast path.
        ``arr`` is ``ks`` as a ``uint64`` array (the caller already built it
        to prove canonicality).  The off-chip scan itself is
        :meth:`_scan_lookups`, shared with the Python backend."""
        np = numpy_or_none()
        d = self.d
        n = self.n_buckets
        mat = self._family.candidates_matrix(self._functions, arr, n)
        mat += np.arange(d, dtype=np.int64) * np.int64(n)  # global bucket ids
        by_key = self._counters.get_block_array(mat.reshape(-1)).reshape(-1, d)
        screen = all_ones = None
        # The array-wise screen is only sound when a zero counter proves
        # absence with no tombstone to consult; otherwise _scan_lookups
        # falls back to the per-key rule (charging tombstone reads).
        if self._rule1_active() and self._tombstones is None:
            screen = (by_key == 0).any(axis=1).tolist()
            all_ones = (by_key == 1).all(axis=1).tolist()
        return self._scan_lookups(
            ks, mat.tolist(), by_key.tolist(), screen, all_ones
        )

    def _scan_lookups(
        self,
        ks: List[Key],
        cand_rows: List[List[int]],
        val_rows: List[List[int]],
        screen: Optional[List[bool]] = None,
        all_ones: Optional[List[bool]] = None,
    ) -> List[LookupOutcome]:
        """The shared per-key probe loop over prefetched candidates/counters
        (one d-list per key; both front-ends materialize the rows in bulk).

        ``screen``/``all_ones`` are the NumPy front-end's precomputed
        principle-1 masks; the Python front-end passes ``None`` and the
        same decisions are made inline per key.
        """
        d = self.d
        # Principle-1 screen without the per-key method call: sound whenever
        # a zero counter proves absence and there are no tombstones to read.
        simple_screen = self._rule1_active() and self._tombstones is None
        have_masks = screen is not None
        if not have_masks:
            # Dummy per-row mask streams so one zip drives both front-ends.
            screen = all_ones = _REPEAT_FALSE
        keys_arr = self._keys
        values_arr = self._values
        flags = self._flags
        stash = self._stash
        d3 = d == 3
        ones = [1] * d
        miss = LookupOutcome(found=False)
        make_hit = LookupOutcome.hit
        make_miss = LookupOutcome.miss
        outcomes: List[LookupOutcome] = []
        append_outcome = outcomes.append
        total_bucket_reads = 0
        for k, cands, vals, row_screened, row_ones in zip(
            ks, cand_rows, val_rows, screen, all_ones
        ):
            if have_masks:
                if row_screened:
                    append_outcome(miss)
                    continue
            elif simple_screen:
                if 0 in vals:
                    append_outcome(miss)
                    continue
                row_ones = vals == ones
            elif self._never_inserted(cands, vals):
                append_outcome(miss)
                continue
            else:
                row_ones = vals == ones
            if row_ones:
                # Fast path for the dominant shape at load: one partition of
                # value 1, probed in candidate order, no grouping needed.
                # A full miss probes every candidate, so the probed list the
                # stash tail wants is just ``cands`` — no tracking needed.
                probed = cands
                if d3:
                    # Unrolled d=3 (the paper's configuration): tuple unpack
                    # plus direct probes beats the generic loop measurably.
                    b0, b1, b2 = cands
                    if keys_arr[b0] == k:
                        total_bucket_reads += 1
                        append_outcome(make_hit(values_arr[b0], 1))
                        continue
                    if keys_arr[b1] == k:
                        total_bucket_reads += 2
                        append_outcome(make_hit(values_arr[b1], 2))
                        continue
                    if keys_arr[b2] == k:
                        total_bucket_reads += 3
                        append_outcome(make_hit(values_arr[b2], 3))
                        continue
                    buckets_read = 3
                else:
                    buckets_read = 0
                    hit_outcome: Optional[LookupOutcome] = None
                    for bucket in cands:
                        buckets_read += 1
                        if keys_arr[bucket] == k:
                            hit_outcome = make_hit(values_arr[bucket], buckets_read)
                            break
                    if hit_outcome is not None:
                        total_bucket_reads += buckets_read
                        append_outcome(hit_outcome)
                        continue
            else:
                probed = []
                buckets_read = 0
                hit_outcome = None
                groups: Dict[int, List[int]] = {}
                for bucket, v in zip(cands, vals):
                    if v:
                        groups.setdefault(v, []).append(bucket)
                for v in sorted(groups, reverse=True):
                    members = groups[v]
                    if len(members) < v:
                        continue
                    for bucket in members[: len(members) - v + 1]:
                        buckets_read += 1
                        if keys_arr[bucket] == k:
                            hit_outcome = make_hit(values_arr[bucket], buckets_read)
                            break
                        probed.append(bucket)
                    if hit_outcome is not None:
                        break
                if hit_outcome is not None:
                    total_bucket_reads += buckets_read
                    append_outcome(hit_outcome)
                    continue
            total_bucket_reads += buckets_read
            # Miss: the stash pre-screen needs the flags of the probed
            # buckets; they ride along with the bucket reads, so gathering
            # them here (peeks) charges nothing the probes didn't.
            if stash is None:
                append_outcome(make_miss(buckets_read))
                continue
            flags_read = [flags.test(bucket) for bucket in probed]
            if not self._should_check_stash(vals, flags_read):
                append_outcome(make_miss(buckets_read))
                continue
            s_found, s_value = stash.lookup(k)
            append_outcome(
                LookupOutcome(
                    found=s_found,
                    value=s_value if s_found else None,
                    from_stash=s_found,
                    checked_stash=True,
                    buckets_read=buckets_read,
                )
            )
        if total_bucket_reads:
            self.mem.offchip_read("bucket", total_bucket_reads)
        return outcomes

    def put_many(self, pairs: Iterable[Tuple[KeyLike, Any]]) -> List[InsertOutcome]:
        """Two-phase batched insert.

        Phase 1 streams the common case: keys whose principles 1-3 placement
        succeeds outright.  Keys that collide (every candidate holds a sole
        copy) are deferred and run through the full kick-out path in phase 2.
        Deferral is sound because placements never free a bucket and never
        touch counter-1 buckets, so a collided key still collides when it is
        retried; the result equals scalar puts in the reordered sequence
        (non-collided keys in order, then collided keys in order).
        """
        items = [(self._canonical(key), value) for key, value in pairs]
        d = self.d
        # Candidates never change, so one multi-key family call (or one
        # candidate-matrix kernel under the NumPy engine) serves the whole
        # batch; the counters for every candidate bucket are then fetched in
        # ONE bulk read (same d-per-key accounting as the scalar path).
        # Earlier placements in the batch can invalidate the pre-read
        # values, so every bucket a placement mutates lands in ``dirty``; a
        # key whose candidates intersect it refreshes them with unaccounted
        # peeks (the charged read already happened up front).
        flat, vals_flat = self._bulk_candidates([k for k, _ in items])
        outcomes: List[Optional[InsertOutcome]] = [None] * len(items)
        deferred: List[int] = []
        counters = self._counters
        peek = counters.peek
        set_block = counters.set_block
        tombstones = self._tombstones
        clear_bit = tombstones.clear_bit if tombstones is not None else None
        keys_arr = self._keys
        values_arr = self._values
        masks_arr = self._masks
        mask_for = self._mask_for
        stored = InsertStatus.STORED
        dirty: set = set()
        bucket_writes = 0  # fast-path off-chip writes, charged once at the end
        wear = self._wear
        base = 0
        for i, (k, value) in enumerate(items):
            cands = flat[base:base + d]
            vals = vals_flat[base:base + d]
            base += d
            if dirty and not dirty.isdisjoint(cands):
                vals = [peek(b) for b in cands]
            if max(vals) < 2:
                # No overwritable candidate: principles 1-3 reduce to
                # "claim every free bucket", the dominant shape at load.
                free = [b for b, v in zip(cands, vals) if v == 0]
                total = len(free)
                if not total:
                    deferred.append(i)
                    continue
                mask = mask_for(free)
                for bucket in free:
                    keys_arr[bucket] = k
                    values_arr[bucket] = value
                    if masks_arr is not None:
                        masks_arr[bucket] = mask
                    if clear_bit is not None:
                        clear_bit(bucket)
                    if wear is not None:
                        wear.note(bucket)
                bucket_writes += total
                set_block(free, total)
                dirty.update(free)
                self._n_main += 1
                outcomes[i] = InsertOutcome(stored, kicks=0, copies=total)
                continue
            copies = self._place_by_principles(k, value, cands, vals,
                                               touched=dirty)
            if copies:
                self._n_main += 1
                outcomes[i] = InsertOutcome(InsertStatus.STORED, kicks=0, copies=copies)
            else:
                deferred.append(i)
        if bucket_writes:
            self.mem.offchip_write("bucket", bucket_writes)
        for i in deferred:
            k, value = items[i]
            # Phase 1 already charged this key's d counter reads.
            outcomes[i] = self._insert_canonical(k, value, charge_counters=False)
        return outcomes  # type: ignore[return-value]

    def delete_many(self, keys: Sequence[KeyLike]) -> List[DeleteOutcome]:
        if self.deletion_mode is DeletionMode.DISABLED:
            raise UnsupportedOperationError(
                "this table was built with DeletionMode.DISABLED"
            )
        counters = self._counters
        n = self.n_buckets
        d = self.d
        ks = [self._canonical(key) for key in keys]
        if self._use_numpy(len(ks)):
            np = numpy_or_none()
            mat = self._family.candidates_matrix(
                self._functions, np.array(ks, dtype=np.uint64), n
            )
            mat += np.arange(d, dtype=np.int64) * np.int64(n)
            cand_rows = mat.tolist()
        else:
            raws = self._family.candidates_many(self._functions, ks, n)
            cand_rows = [
                [table * n + raw[table] for table in range(d)] for raw in raws
            ]
        outcomes: List[DeleteOutcome] = []
        for k, cands in zip(ks, cand_rows):
            # Fresh per-key read: earlier deletes in the batch zero counters.
            vals = counters.get_block(cands)
            outcomes.append(self._delete_canonical(k, cands, vals))
        return outcomes

    # ------------------------------------------------------------------
    # deletion and update
    # ------------------------------------------------------------------

    def _find_copies(
        self, k: Key, cands: Sequence[int], vals: Sequence[int]
    ) -> Tuple[List[int], List[bool]]:
        """Locate every bucket holding ``k`` per the deletion principles.

        Returns the copy buckets (empty if not in the main table) and the
        stash flags observed along the way.
        """
        flags_read: List[bool] = []
        for v, members in self._partitions(cands, vals):
            if len(members) < v:
                continue
            limit = len(members) - v + 1
            found_at: List[int] = []
            for index, bucket in enumerate(members):
                if not found_at and index >= limit:
                    break
                stored_key, _, flag, _ = self._read_entry(bucket)
                flags_read.append(flag)
                if stored_key == k:
                    found_at.append(bucket)
                    if len(found_at) == v:
                        break
            if found_at:
                if len(found_at) != v:
                    raise InvariantViolationError(
                        f"key {k:#x}: found {len(found_at)} copies, counter says {v}"
                    )
                return found_at, flags_read
        return [], flags_read

    def delete(self, key: KeyLike) -> DeleteOutcome:
        if self.deletion_mode is DeletionMode.DISABLED:
            raise UnsupportedOperationError(
                "this table was built with DeletionMode.DISABLED"
            )
        k = self._canonical(key)
        cands = self._candidates(k)
        vals = self._counters.get_many(cands)
        return self._delete_canonical(k, cands, vals)

    def _delete_canonical(
        self, k: Key, cands: Sequence[int], vals: Sequence[int]
    ) -> DeleteOutcome:
        if self._never_inserted(cands, vals):
            return DeleteOutcome(deleted=False)
        copies, flags_read = self._find_copies(k, cands, vals)
        if copies:
            for bucket in copies:
                self._counters.set(bucket, 0)
                if self._tombstones is not None:
                    self._tombstones.mark(bucket)
            self._n_main -= 1
            return DeleteOutcome(deleted=True, copies_removed=len(copies))
        if self._stash is not None and len(self._stash) and all(flags_read):
            if self._stash.delete(k):
                # The flags are Bloom-style and cannot be cleared (§III.F);
                # stash deletions leave them stale until a refresh.
                return DeleteOutcome(deleted=True, copies_removed=1, from_stash=True,
                                     checked_stash=True)
            return DeleteOutcome(deleted=False, checked_stash=True)
        return DeleteOutcome(deleted=False)

    def try_update(self, key: KeyLike, value: Any) -> Optional[InsertOutcome]:
        k = self._canonical(key)
        cands = self._candidates(k)
        vals = self._counters.get_many(cands)
        if self._never_inserted(cands, vals):
            return None
        copies, flags_read = self._find_copies(k, cands, vals)
        if copies:
            mask = self._mask_for(copies)
            for bucket in copies:
                self._write_entry(bucket, k, value, mask)
            return InsertOutcome(InsertStatus.UPDATED, copies=len(copies))
        if self._stash is not None and len(self._stash) and all(flags_read):
            if self._stash.delete(k):
                self._stash.add(k, value)
                return InsertOutcome(InsertStatus.UPDATED, copies=1)
        return None

    # ------------------------------------------------------------------
    # stash flag refresh (§III.F)
    # ------------------------------------------------------------------

    def refresh_stash(self) -> int:
        """Re-synchronise the stash flags after deletions have staled them.

        Resets every flag, drains the stash, and re-inserts the drained
        items through the normal path (items that fail again re-enter the
        stash, setting fresh flags).  Returns the number of drained items
        that made it back into the main table.
        """
        if self._stash is None:
            raise UnsupportedOperationError("table has no stash")
        items = self._stash.pop_all()
        for bucket in range(self.capacity):
            if self._flags.test(bucket):
                self._flags.clear_bit(bucket)
                self.mem.offchip_write("flag-clear")
        returned = 0
        for key, value in items:
            outcome = self._insert_canonical(key, value)
            if outcome.status is InsertStatus.STORED:
                returned += 1
        return returned

    # ------------------------------------------------------------------
    # introspection (unaccounted; for tests, invariants and iteration)
    # ------------------------------------------------------------------

    def copies_of(self, key: KeyLike) -> List[int]:
        """Global bucket indices currently holding live copies of ``key``."""
        k = self._canonical(key)
        return [
            bucket
            for bucket in self._candidates(k)
            if self._counters.peek(bucket) > 0 and self._keys[bucket] == k
        ]

    def items(self) -> Iterator[Tuple[Key, Any]]:
        seen: set = set()
        for bucket in range(self.capacity):
            if self._counters.peek(bucket) == 0:
                continue
            key = self._keys[bucket]
            if key not in seen:
                seen.add(key)
                yield key, self._values[bucket]
        if self._stash is not None:
            yield from self._stash.items()

    @property
    def onchip_bytes(self) -> int:
        """On-chip SRAM footprint of the helper structures."""
        total = self._counters.storage_bytes
        if self._tombstones is not None:
            total += self._tombstones.storage_bytes
        return total

    def counter_histogram(self) -> Dict[int, int]:
        """Counter value distribution (unaccounted; used by experiments)."""
        histogram: Dict[int, int] = {}
        for value in self._counters:
            histogram[value] = histogram.get(value, 0) + 1
        return histogram
