"""The common hash-table interface every scheme in this library implements.

The paper compares four schemes (Cuckoo, McCuckoo, BCHT, B-McCuckoo) plus a
stash; the experiment harness treats them uniformly through
:class:`HashTable`.  All tables:

* take a shared :class:`~repro.memory.model.MemoryModel` and report every
  on-chip/off-chip access to it;
* use 64-bit integer keys (see :func:`repro.hashing.canonical_key`);
* store an arbitrary Python value per key;
* count *distinct logical items*, never physical copies, in ``len``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..hashing import Key, KeyLike, canonical_key
from ..memory.model import MemoryModel
from .results import DeleteOutcome, InsertOutcome, LookupOutcome, TableEvents


class HashTable(ABC):
    """Abstract key-value hash table with memory-access accounting."""

    #: short scheme name used in experiment tables ("Cuckoo", "McCuckoo", ...)
    name: str = "table"

    def __init__(self, mem: Optional[MemoryModel] = None) -> None:
        self.mem = mem if mem is not None else MemoryModel()
        self.events = TableEvents()

    # -- abstract operations -------------------------------------------------

    @abstractmethod
    def put(self, key: KeyLike, value: Any = None) -> InsertOutcome:
        """Insert a key assumed absent (the paper's workload model).

        Inserting a key that is already present creates a duplicate logical
        item; use :meth:`upsert` when presence is possible.
        """

    @abstractmethod
    def lookup(self, key: KeyLike) -> LookupOutcome:
        """Find a key, returning the detailed outcome."""

    @abstractmethod
    def delete(self, key: KeyLike) -> DeleteOutcome:
        """Remove a key (all physical copies)."""

    @property
    @abstractmethod
    def capacity(self) -> int:
        """Total number of item slots in the main table."""

    @abstractmethod
    def __len__(self) -> int:
        """Distinct items currently stored (main table plus stash)."""

    @abstractmethod
    def items(self) -> Iterator[Tuple[Key, Any]]:
        """Iterate distinct ``(key, value)`` pairs (unaccounted; for tests)."""

    # -- batched operations ----------------------------------------------------
    #
    # Semantics contract: each batched call returns exactly the outcomes the
    # scalar loop would, with identical memory-accounting totals in the
    # default PER_COUNTER charging mode (put_many may execute collided keys
    # after non-collided ones; see McCuckoo.put_many).  Schemes with a real
    # bulk fast path override these; the defaults make every table batchable.

    def lookup_many(self, keys: Sequence[KeyLike]) -> List[LookupOutcome]:
        """Look up many keys; one outcome per key, in input order."""
        return [self.lookup(key) for key in keys]

    def put_many(self, pairs: Iterable[Tuple[KeyLike, Any]]) -> List[InsertOutcome]:
        """Insert many (key, value) pairs; one outcome per pair, in input order."""
        return [self.put(key, value) for key, value in pairs]

    def delete_many(self, keys: Sequence[KeyLike]) -> List[DeleteOutcome]:
        """Delete many keys; one outcome per key, in input order."""
        return [self.delete(key) for key in keys]

    # -- shared conveniences ---------------------------------------------------

    def upsert(self, key: KeyLike, value: Any = None) -> InsertOutcome:
        """Insert or update: safe when the key may already exist."""
        outcome = self.try_update(key, value)
        if outcome is not None:
            return outcome
        return self.put(key, value)

    def try_update(self, key: KeyLike, value: Any) -> Optional[InsertOutcome]:
        """Update the value of an existing key, or return None if absent.

        Subclasses with physical copies override this to rewrite every copy.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support in-place updates"
        )

    def get(self, key: KeyLike, default: Any = None) -> Any:
        """Plain dict-style accessor."""
        outcome = self.lookup(key)
        return outcome.value if outcome.found else default

    def __contains__(self, key: KeyLike) -> bool:
        return self.lookup(key).found

    @property
    def load_ratio(self) -> float:
        """Distinct items divided by main-table capacity (paper's definition)."""
        return len(self) / self.capacity if self.capacity else 0.0

    @staticmethod
    def _canonical(key: KeyLike) -> Key:
        return canonical_key(key)

    def fill_to(self, load: float, key_iter: Iterator[KeyLike]) -> int:
        """Insert keys from ``key_iter`` until ``load_ratio`` reaches ``load``.

        Returns the number of keys inserted.  Stops early (and returns what it
        managed) if the iterator runs dry.
        """
        if not 0.0 <= load <= 1.0:
            raise ValueError("load must be within [0, 1]")
        target = int(load * self.capacity)
        inserted = 0
        consecutive_failures = 0
        while len(self) < target:
            try:
                key = next(key_iter)
            except StopIteration:
                break
            outcome = self.put(key)
            inserted += 1
            if outcome.failed:
                consecutive_failures += 1
                if consecutive_failures >= 64:
                    break
            else:
                consecutive_failures = 0
        return inserted
