"""Configuration enums shared by the table implementations."""

from __future__ import annotations

from enum import Enum


class DeletionMode(Enum):
    """How a McCuckoo table supports deletions (§III.D of the paper).

    The choice trades deletion support against the strength of the
    counter-based "Bloom filter" lookup rule (principle 1: any zero counter
    proves the key was never inserted):

    * ``DISABLED`` — no deletions; principle 1 is sound and the stash can be
      screened purely from counter values.
    * ``RESET`` — deleting zeroes the counters of all copies; principle 1
      must be switched off (a zero may be a deletion scar), and stash
      screening falls back to the off-chip flags actually read.
    * ``TOMBSTONE`` — deleted buckets are marked: the mark reads as *zero
      for insertion* but *non-zero for lookup*, so principle 1 stays sound;
      the filter's selectivity fades as tombstones accumulate (the paper's
      "second solution", recommended when deletions are rare).
    """

    DISABLED = "disabled"
    RESET = "reset"
    TOMBSTONE = "tombstone"


class SiblingTracking(Enum):
    """How the other copies of an overwritten item are located (DESIGN.md §4).

    * ``READ`` — resolve which candidate buckets hold the victim's remaining
      copies from counter values alone when unambiguous, paying extra
      off-chip reads only for the rare ambiguous case.
    * ``METADATA`` — store a d-bit copy bitmap with every entry (the
      single-slot analogue of the paper's multi-slot sibling-slot metadata)
      and keep it fresh with cheap off-chip writes.
    """

    READ = "read"
    METADATA = "metadata"


class FailurePolicy(Enum):
    """What an insertion does when collision resolution exhausts maxloop."""

    STASH = "stash"
    """Move the displaced item to the stash (the paper's approach)."""

    REHASH = "rehash"
    """Read out every item and rebuild into a bigger table with new hashes
    (the traditional remedy the paper argues against)."""

    FAIL = "fail"
    """Raise :class:`~repro.core.errors.TableFullError`.  The displaced item
    is reported in the exception; the table keeps every other item."""
