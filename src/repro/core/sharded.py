"""Sharded McCuckoo: hash-partitioned tables for multi-writer scaling.

§III.H gives McCuckoo one-writer-many-readers concurrency.  The standard
way production systems scale *writers* is orthogonal sharding: partition
the key space across N independent tables, each with its own writer (and,
here, its own stash and counters).  Lookups hash to exactly one shard, so
the per-operation cost is unchanged; writers on different shards never
touch shared state.

The shard selector is drawn from a different hash stream than the
in-shard candidate functions, so sharding does not bias bucket choice.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

from .._numpy import numpy_or_none
from ..hashing import Key, KeyLike
from ..hashing.splitmix import splitmix64, splitmix64_array
from ..memory.model import MemoryModel
from .config import DeletionMode, SiblingTracking
from .engine import EngineConfig, EngineLike
from .errors import ConfigurationError
from .interface import HashTable
from .mccuckoo import McCuckoo
from .results import DeleteOutcome, InsertOutcome, LookupOutcome


class ShardRouter:
    """Stable, salt-keyed key → shard mapping.

    The salt is drawn from a different hash stream than any in-shard
    candidate function, so routing never biases bucket choice.  Shared by
    :class:`ShardedMcCuckoo` and the serving layer's sharded store so both
    agree on ownership for the same ``(n_shards, seed)``.
    """

    def __init__(self, n_shards: int, seed: int = 0) -> None:
        if n_shards <= 0:
            raise ConfigurationError("n_shards must be positive")
        self.n_shards = n_shards
        self._salt = splitmix64(seed ^ 0x5AAD)

    def shard_of(self, key: Key) -> int:
        """Which shard owns the canonical ``key``."""
        return splitmix64(key ^ self._salt) % self.n_shards

    def shard_of_many(
        self, keys: Sequence[Key], use_numpy: bool = False
    ) -> List[int]:
        """Shard owners for a batch of canonical keys.

        With ``use_numpy`` (and NumPy importable) the whole batch is one
        SplitMix64 array pass — bit-identical to the scalar mapping, since
        ``uint64`` wrap-around *is* the scalar path's ``& MASK64``.
        """
        if use_numpy:
            np = numpy_or_none()
            if np is not None:
                return self.shard_of_array(
                    np.array(keys, dtype=np.uint64)
                ).tolist()
        salt = self._salt
        n = self.n_shards
        return [splitmix64(k ^ salt) % n for k in keys]

    def shard_of_array(self, keys_u64):
        """Shard owners for an already-canonical ``uint64`` array.

        Array-in/array-out variant of :meth:`shard_of_many` for callers
        holding a NumPy key array (e.g. a zero-copy view over a
        shared-memory ring slot): no list hop on either side, and the
        ``int64`` result can be mask-compared per shard.  Bit-identical
        to the scalar mapping (``uint64`` wrap-around is the scalar
        path's ``& MASK64``).
        """
        np = numpy_or_none()
        digests = splitmix64_array(keys_u64 ^ np.uint64(self._salt))
        return (digests % np.uint64(self.n_shards)).astype(np.int64)

    def worker_of(self, key: Key, n_workers: int) -> int:
        """Which of ``n_workers`` worker processes owns ``key``.

        Workers own shards round-robin (``worker = shard % n_workers``),
        so worker ownership is a pure function of the router's
        ``(n_shards, seed)`` — stable across worker restarts and across
        frontend/worker process boundaries.
        """
        return worker_of_shard(self.shard_of(key), n_workers)


def worker_of_shard(shard: int, n_workers: int) -> int:
    """Round-robin shard → worker-process assignment (routing epoch 0)."""
    if n_workers <= 0:
        raise ConfigurationError("n_workers must be positive")
    return shard % n_workers


class RoutingTable:
    """Epoch-versioned shard → worker map for live resharding.

    Epoch 0 is exactly the static round-robin assignment
    (:func:`worker_of_shard`), so a table nobody reshards behaves
    bit-identically to the fixed map the worker pool has always used.
    A migration commits by calling :meth:`reassign`, which installs an
    overlay entry and bumps :attr:`epoch` — the version number the
    serving layer stamps into migration frames and the faultgen audit
    uses to attribute acknowledged writes to the right owner.

    Invariants (property-tested in ``tests/core``): every shard maps to
    exactly one worker at every epoch, and the per-worker groups remain
    a disjoint partition of the shard space after any reassignment
    sequence.
    """

    def __init__(self, n_shards: int, n_workers: int) -> None:
        if n_shards <= 0:
            raise ConfigurationError("n_shards must be positive")
        if n_workers <= 0:
            raise ConfigurationError("n_workers must be positive")
        self.n_shards = n_shards
        self.n_workers = n_workers
        self.epoch = 0
        self._overlay: dict = {}

    def worker_of_shard(self, shard: int) -> int:
        """The worker currently owning ``shard`` (overlay over the base)."""
        if not 0 <= shard < self.n_shards:
            raise ConfigurationError(
                f"shard {shard} out of range for {self.n_shards} shards"
            )
        worker = self._overlay.get(shard)
        if worker is not None:
            return worker
        return worker_of_shard(shard, self.n_workers)

    def shards_of_worker(self, worker: int) -> Tuple[int, ...]:
        """The shard group ``worker`` owns at the current epoch."""
        if not 0 <= worker < self.n_workers:
            raise ConfigurationError(
                f"worker {worker} out of range for {self.n_workers} workers"
            )
        return tuple(
            shard for shard in range(self.n_shards)
            if self.worker_of_shard(shard) == worker
        )

    def reassign(self, shard: int, worker: int) -> int:
        """Atomically move ``shard`` to ``worker``; returns the new epoch.

        This is the migration commit point: callers flip it only after
        the target holds every acknowledged write (fence + final delta).
        """
        self.worker_of_shard(shard)  # range check
        if not 0 <= worker < self.n_workers:
            raise ConfigurationError(
                f"worker {worker} out of range for {self.n_workers} workers"
            )
        self._overlay[shard] = worker
        self.epoch += 1
        return self.epoch

    def assignment(self) -> Tuple[int, ...]:
        """The full shard → worker vector at the current epoch."""
        return tuple(
            self.worker_of_shard(shard) for shard in range(self.n_shards)
        )


def shards_of_worker(worker: int, n_shards: int, n_workers: int) -> Tuple[int, ...]:
    """The disjoint shard group worker ``worker`` owns.

    Every shard is owned by exactly one worker; workers beyond
    ``n_shards`` own nothing (legal, if pointless).
    """
    if n_workers <= 0:
        raise ConfigurationError("n_workers must be positive")
    if not 0 <= worker < n_workers:
        raise ConfigurationError(
            f"worker {worker} out of range for {n_workers} workers"
        )
    return tuple(range(worker, n_shards, n_workers))


class ShardedMcCuckoo(HashTable):
    """N independent McCuckoo shards behind one HashTable facade."""

    name = "ShardedMcCuckoo"

    def __init__(
        self,
        n_shards: int,
        n_buckets_per_shard: int,
        d: int = 3,
        seed: int = 0,
        maxloop: int = 500,
        deletion_mode: DeletionMode = DeletionMode.DISABLED,
        sibling_tracking: SiblingTracking = SiblingTracking.READ,
        stash_buckets: int = 64,
        mem: Optional[MemoryModel] = None,
        shared_accounting: bool = True,
        engine: EngineLike = None,
        kick_policy: Optional[str] = None,
    ) -> None:
        super().__init__(mem)
        if n_buckets_per_shard <= 0:
            raise ConfigurationError("n_buckets_per_shard must be positive")
        if kick_policy is not None and not isinstance(kick_policy, str):
            raise ConfigurationError(
                "pass kick_policy by registry name (a string): each shard "
                "needs its own policy instance, so a shared instance cannot "
                "be attached to all of them"
            )
        self._router = ShardRouter(n_shards, seed=seed)
        self.n_shards = n_shards
        self.engine = EngineConfig.coerce(engine)
        self._engine_numpy = self.engine.resolve() == "numpy"
        self._engine_min_batch = self.engine.min_batch
        self._shards: List[McCuckoo] = [
            McCuckoo(
                n_buckets_per_shard,
                d=d,
                seed=seed + 101 * index + 1,
                maxloop=maxloop,
                deletion_mode=deletion_mode,
                sibling_tracking=sibling_tracking,
                stash_buckets=stash_buckets,
                mem=self.mem if shared_accounting else MemoryModel(),
                engine=self.engine,
                kick_policy=kick_policy,
            )
            for index in range(n_shards)
        ]

    # ------------------------------------------------------------------

    def shard_index(self, key: KeyLike) -> int:
        """Which shard owns ``key`` (stable, salt-keyed)."""
        return self._router.shard_of(self._canonical(key))

    def shard_for(self, key: KeyLike) -> McCuckoo:
        return self._shards[self.shard_index(key)]

    @property
    def shards(self) -> List[McCuckoo]:
        return list(self._shards)

    @property
    def capacity(self) -> int:
        return sum(shard.capacity for shard in self._shards)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    # ------------------------------------------------------------------

    def put(self, key: KeyLike, value: Any = None) -> InsertOutcome:
        return self.shard_for(key).put(key, value)

    def lookup(self, key: KeyLike) -> LookupOutcome:
        return self.shard_for(key).lookup(key)

    def delete(self, key: KeyLike) -> DeleteOutcome:
        return self.shard_for(key).delete(key)

    def try_update(self, key: KeyLike, value: Any) -> Optional[InsertOutcome]:
        return self.shard_for(key).try_update(key, value)

    def items(self) -> Iterator[Tuple[Key, Any]]:
        for shard in self._shards:
            yield from shard.items()

    # ------------------------------------------------------------------
    # batched operations: group by shard, one kernel call per shard
    # ------------------------------------------------------------------

    def _group_by_shard(
        self, keys: Sequence[KeyLike]
    ) -> Tuple[List[List[int]], List[List[Key]]]:
        """Input positions and canonical keys owned by each shard."""
        positions: List[List[int]] = [[] for _ in range(self.n_shards)]
        grouped: List[List[Key]] = [[] for _ in range(self.n_shards)]
        if self._engine_numpy and len(keys) >= self._engine_min_batch:
            ks = [self._canonical(key) for key in keys]
            shards = self._router.shard_of_many(ks, use_numpy=True)
            for pos, (k, shard) in enumerate(zip(ks, shards)):
                positions[shard].append(pos)
                grouped[shard].append(k)
            return positions, grouped
        shard_of = self._router.shard_of
        for pos, key in enumerate(keys):
            k = self._canonical(key)
            shard = shard_of(k)
            positions[shard].append(pos)
            grouped[shard].append(k)
        return positions, grouped

    def lookup_many(self, keys: Sequence[KeyLike]) -> List[LookupOutcome]:
        positions, grouped = self._group_by_shard(keys)
        outcomes: List[Optional[LookupOutcome]] = [None] * len(keys)
        for shard, table in enumerate(self._shards):
            if grouped[shard]:
                for pos, outcome in zip(
                    positions[shard], table.lookup_many(grouped[shard])
                ):
                    outcomes[pos] = outcome
        return outcomes  # type: ignore[return-value]

    def put_many(self, pairs: Iterable[Tuple[KeyLike, Any]]) -> List[InsertOutcome]:
        items = list(pairs)
        positions, grouped = self._group_by_shard([key for key, _ in items])
        outcomes: List[Optional[InsertOutcome]] = [None] * len(items)
        for shard, table in enumerate(self._shards):
            if grouped[shard]:
                shard_pairs = [
                    (k, items[pos][1])
                    for k, pos in zip(grouped[shard], positions[shard])
                ]
                for pos, outcome in zip(
                    positions[shard], table.put_many(shard_pairs)
                ):
                    outcomes[pos] = outcome
        return outcomes  # type: ignore[return-value]

    def delete_many(self, keys: Sequence[KeyLike]) -> List[DeleteOutcome]:
        positions, grouped = self._group_by_shard(keys)
        outcomes: List[Optional[DeleteOutcome]] = [None] * len(keys)
        for shard, table in enumerate(self._shards):
            if grouped[shard]:
                for pos, outcome in zip(
                    positions[shard], table.delete_many(grouped[shard])
                ):
                    outcomes[pos] = outcome
        return outcomes  # type: ignore[return-value]

    # ------------------------------------------------------------------

    def shard_loads(self) -> List[float]:
        """Per-shard load ratios (balance diagnostics)."""
        return [shard.load_ratio for shard in self._shards]

    def imbalance(self) -> float:
        """max/mean shard load; 1.0 is perfect balance."""
        loads = self.shard_loads()
        mean = sum(loads) / len(loads)
        return max(loads) / mean if mean else 1.0

    def stash_population(self) -> int:
        """Total items currently sitting in per-shard stashes."""
        return sum(
            len(shard.stash) for shard in self._shards if shard.stash is not None
        )

    @property
    def onchip_bytes(self) -> int:
        return sum(shard.onchip_bytes for shard in self._shards)
