"""Execution-engine selection for the vectorized batch kernels.

The batched operations (``lookup_many``/``put_many``/``delete_many`` and
the sharded/serving layers above them) have two interchangeable
implementations:

* a **pure-Python** path — always available, byte-identical to scalar
  loops, and the default; and
* a **NumPy** path — array-at-a-time candidate hashing, one-shot counter
  gathers, and the paper's partition/probe plan derived array-wise, for
  the regular batch shapes where interpreter overhead dominates.

Both paths compute the same logical memory accesses and charge the
:class:`~repro.memory.model.MemoryModel` identically (in *both*
counter-charging modes), so switching backends never moves a paper
figure; only host wall-clock changes.  The equivalence is enforced by
``tests/properties/test_engine_equivalence.py``.

NumPy is an optional extra (``pip install repro[fast]``).  Backend
``"auto"`` picks NumPy when it imports, otherwise falls back silently;
backend ``"numpy"`` demands it and raises
:class:`~repro.core.errors.ConfigurationError` at construction time when
it is missing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from .._numpy import numpy_available, numpy_or_none
from .errors import ConfigurationError

BACKENDS = ("python", "numpy", "auto")

EngineLike = Union[None, str, "EngineConfig"]


@dataclass(frozen=True)
class EngineConfig:
    """How batch kernels execute.

    ``backend``
        ``"python"`` (default), ``"numpy"``, or ``"auto"`` (NumPy when
        importable, else Python).
    ``min_batch``
        Batches smaller than this always take the Python path even when
        NumPy is selected: array setup costs more than it saves on a
        handful of keys.  The two paths are observationally equivalent,
        so the threshold is purely a performance knob.
    """

    backend: str = "python"
    min_batch: int = 16

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown engine backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if self.min_batch < 1:
            raise ConfigurationError("min_batch must be >= 1")

    @classmethod
    def coerce(cls, value: EngineLike) -> "EngineConfig":
        """Accept ``None`` (default), a backend name, or a config."""
        if value is None:
            return cls()
        if isinstance(value, EngineConfig):
            return value
        if isinstance(value, str):
            return cls(backend=value)
        raise ConfigurationError(
            f"engine must be None, a backend name, or an EngineConfig; got {value!r}"
        )

    def resolve(self) -> str:
        """The concrete backend this config runs: ``"python"`` or ``"numpy"``.

        Raises :class:`ConfigurationError` when NumPy was demanded
        explicitly but is not importable.
        """
        if self.backend == "python":
            return "python"
        if self.backend == "numpy":
            if not numpy_available():
                raise ConfigurationError(
                    "engine backend 'numpy' requested but numpy is not "
                    "installed; install the optional extra (pip install "
                    "repro[fast]) or use backend='auto'"
                )
            return "numpy"
        return "numpy" if numpy_available() else "python"

    def use_numpy(self, batch_size: int) -> bool:
        """Whether a batch of this size should take the NumPy path.

        One predicate shared by every batch entry point (store, worker,
        zero-copy key runs) so the threshold logic cannot drift between
        layers: the resolved backend must be NumPy *and* the batch must
        clear ``min_batch``.
        """
        return batch_size >= self.min_batch and self.resolve() == "numpy"


__all__ = [
    "BACKENDS",
    "EngineConfig",
    "EngineLike",
    "numpy_available",
    "numpy_or_none",
]
