"""Stashes: where items go when collision resolution fails.

Two variants are provided:

* :class:`OffChipStash` — the paper's contribution (§III.E): a chained hash
  table living in abundant off-chip memory.  It can grow far beyond the
  classic 4-entry on-chip stash, and McCuckoo's counter + per-bucket-flag
  pre-screening keeps it almost never visited.
* :class:`OnChipStash` — the traditional CHS-style stash [22]: a tiny
  linear-scanned array in on-chip memory, checked on *every* failed main
  table lookup.  Used by the CHS baseline.

Both report their traffic to the shared :class:`MemoryModel`.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from ..hashing import DEFAULT_FAMILY, HashFamily, Key
from ..memory.model import MemoryModel
from .errors import TableFullError


class OffChipStash:
    """Chained hash table in off-chip memory.

    Each probe charges one off-chip read for the bucket head plus one per
    additional chain node traversed; inserts and deletes charge one off-chip
    write.  Chains stay short because the stash holds a small fraction of
    all items (Tables II/III of the paper).
    """

    def __init__(
        self,
        n_buckets: int,
        mem: MemoryModel,
        family: Optional[HashFamily] = None,
        seed: int = 0x57A5,
    ) -> None:
        if n_buckets <= 0:
            raise ValueError("n_buckets must be positive")
        self._buckets: List[List[Tuple[Key, Any]]] = [[] for _ in range(n_buckets)]
        self._mem = mem
        self._hash = (family or DEFAULT_FAMILY).functions(1, seed)[0]
        self._count = 0

    def _bucket_of(self, key: Key) -> List[Tuple[Key, Any]]:
        return self._buckets[self._hash.bucket(key, len(self._buckets))]

    def add(self, key: Key, value: Any) -> None:
        self._mem.offchip_write("stash-insert")
        self._bucket_of(key).append((key, value))
        self._count += 1

    def lookup(self, key: Key) -> Tuple[bool, Any]:
        chain = self._bucket_of(key)
        self._mem.offchip_read("stash-probe")
        for position, (stored_key, value) in enumerate(chain):
            if position > 0:
                self._mem.offchip_read("stash-chain")
            if stored_key == key:
                return True, value
        return False, None

    def delete(self, key: Key) -> bool:
        chain = self._bucket_of(key)
        self._mem.offchip_read("stash-probe")
        for position, (stored_key, _) in enumerate(chain):
            if position > 0:
                self._mem.offchip_read("stash-chain")
            if stored_key == key:
                chain.pop(position)
                self._mem.offchip_write("stash-delete")
                self._count -= 1
                return True
        return False

    def pop_all(self) -> List[Tuple[Key, Any]]:
        """Drain the stash (used by the flag-refresh procedure, §III.F)."""
        drained: List[Tuple[Key, Any]] = []
        for chain in self._buckets:
            drained.extend(chain)
            chain.clear()
        self._mem.offchip_read("stash-drain", count=len(drained))
        self._count = 0
        return drained

    def items(self) -> Iterator[Tuple[Key, Any]]:
        """Unaccounted iteration for tests and invariant checks."""
        for chain in self._buckets:
            yield from chain

    def __len__(self) -> int:
        return self._count

    def __contains__(self, key: Key) -> bool:
        return any(stored == key for stored, _ in self.items())

    @property
    def max_chain_length(self) -> int:
        return max((len(chain) for chain in self._buckets), default=0)


class OnChipStash:
    """Tiny fixed-capacity stash scanned linearly, kept in on-chip memory."""

    def __init__(self, capacity: int, mem: MemoryModel) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: List[Tuple[Key, Any]] = []
        self._mem = mem

    def add(self, key: Key, value: Any) -> None:
        if len(self._entries) >= self.capacity:
            raise TableFullError("on-chip stash overflow (rehash would be needed)")
        self._mem.onchip_write("stash-insert")
        self._entries.append((key, value))

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def lookup(self, key: Key) -> Tuple[bool, Any]:
        for stored_key, value in self._entries:
            self._mem.onchip_read("stash-scan")
            if stored_key == key:
                return True, value
        if not self._entries:
            self._mem.onchip_read("stash-scan")
        return False, None

    def delete(self, key: Key) -> bool:
        for position, (stored_key, _) in enumerate(self._entries):
            self._mem.onchip_read("stash-scan")
            if stored_key == key:
                self._entries.pop(position)
                self._mem.onchip_write("stash-delete")
                return True
        return False

    def pop_all(self) -> List[Tuple[Key, Any]]:
        drained = list(self._entries)
        self._entries.clear()
        return drained

    def items(self) -> Iterator[Tuple[Key, Any]]:
        yield from self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Key) -> bool:
        return any(stored == key for stored, _ in self._entries)
