"""B-McCuckoo: the blocked (multi-slot) multi-copy cuckoo table (§III.G).

Each of the ``d`` sub-tables has ``m`` buckets of ``l`` slots; one whole
bucket is retrieved per off-chip access (the blocked-cuckoo assumption the
paper adopts from [33]).  One 2-bit counter per *slot* lives on-chip, read a
bucket-word at a time.

Because a copy's location inside a bucket is invisible to the on-chip
structure, each stored entry carries sibling-slot metadata — which slot the
item's copy occupies in each of its candidate buckets (Fig. 5 of the paper,
(d−1)·⌈log₂ l⌉ bits per slot).  The metadata is kept fresh: whenever a copy
is lost, the remaining copies' metadata is patched with cheap off-chip
writes, so deletions can zero all copy counters without re-reading buckets.

Insertion, lookup and deletion follow Algorithms 1–3 of the paper.
"""

from __future__ import annotations

import random
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..hashing import DEFAULT_FAMILY, HashFamily, Key, KeyLike
from ..memory.model import MemoryModel
from .config import DeletionMode, FailurePolicy
from .counters import BitArray, PackedArray
from .errors import (
    ConfigurationError,
    InvariantViolationError,
    TableFullError,
    UnsupportedOperationError,
)
from .interface import HashTable
from .policies import KickPolicy, RandomWalkPolicy, make_policy
from .results import DeleteOutcome, InsertOutcome, InsertStatus, LookupOutcome
from .stash import OffChipStash

SlotMap = Tuple[Optional[int], ...]
"""Per-entry sibling metadata: slot index of the item's copy in each of the
d candidate buckets (None where it has no copy)."""


class BlockedMcCuckoo(HashTable):
    """Multi-copy cuckoo table with ``l`` slots per bucket (B-McCuckoo)."""

    name = "B-McCuckoo"

    def __init__(
        self,
        n_buckets: int,
        d: int = 3,
        slots: int = 3,
        family: Optional[HashFamily] = None,
        seed: int = 0,
        maxloop: int = 500,
        kick_policy: Union[KickPolicy, str, None] = None,
        on_failure: FailurePolicy = FailurePolicy.STASH,
        stash_buckets: int = 64,
        deletion_mode: DeletionMode = DeletionMode.DISABLED,
        lookup_counter_screen: bool = True,
        mem: Optional[MemoryModel] = None,
    ) -> None:
        super().__init__(mem)
        if n_buckets <= 0:
            raise ConfigurationError("n_buckets must be positive")
        if not lookup_counter_screen and deletion_mode is not DeletionMode.DISABLED:
            raise ConfigurationError(
                "the counter screen can only be skipped without deletions: "
                "with deletions, stale slots are indistinguishable from live "
                "ones off-chip"
            )
        if d < 2:
            raise ConfigurationError("cuckoo hashing needs d >= 2")
        if slots < 1:
            raise ConfigurationError("slots must be positive")
        if maxloop < 0:
            raise ConfigurationError("maxloop must be non-negative")
        self.d = d
        self.slots = slots
        self.n_buckets = n_buckets
        self.maxloop = maxloop
        self.deletion_mode = deletion_mode
        self.on_failure = on_failure
        self.lookup_counter_screen = lookup_counter_screen
        self._family = family or DEFAULT_FAMILY
        self._seed = seed
        self._functions = self._family.functions(d, seed)
        self._rng = random.Random(seed ^ 0xB10C)
        if kick_policy is None:
            self._policy: KickPolicy = RandomWalkPolicy()
        elif isinstance(kick_policy, str):
            self._policy = make_policy(kick_policy)
        else:
            self._policy = kick_policy
        n_bucket_total = d * n_buckets
        n_slot_total = n_bucket_total * slots
        bits = 2 if d <= 3 else 4
        self._counters = PackedArray(
            n_slot_total, bits=bits, mem=self.mem, label="slot-counter"
        )
        self._flags = BitArray(n_bucket_total, mem=None, label="stash-flag")
        if deletion_mode is DeletionMode.TOMBSTONE:
            self._tombstones: Optional[BitArray] = BitArray(
                n_slot_total, mem=self.mem, label="tombstone"
            )
        else:
            self._tombstones = None
        self._keys: List[Optional[Key]] = [None] * n_slot_total
        self._values: List[Any] = [None] * n_slot_total
        self._slotmaps: List[Optional[SlotMap]] = [None] * n_slot_total
        self._stash: Optional[OffChipStash] = None
        if on_failure is FailurePolicy.STASH:
            self._stash = OffChipStash(stash_buckets, self.mem, self._family)
        self._policy.attach(n_bucket_total, self.mem)
        self._n_main = 0
        self.total_kicks = 0

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self.d * self.n_buckets * self.slots

    def __len__(self) -> int:
        return self._n_main + (len(self._stash) if self._stash is not None else 0)

    @property
    def main_items(self) -> int:
        return self._n_main

    @property
    def stash(self) -> Optional[OffChipStash]:
        return self._stash

    def _candidates(self, key: Key) -> List[int]:
        """Global *bucket* index per sub-table."""
        n = self.n_buckets
        raw = self._family.candidates(self._functions, key, n)
        return [table * n + raw[table] for table in range(self.d)]

    def _position_of(self, bucket: int) -> int:
        return bucket // self.n_buckets

    def _slot_index(self, bucket: int, slot: int) -> int:
        return bucket * self.slots + slot

    # ------------------------------------------------------------------
    # on-chip counter words
    # ------------------------------------------------------------------

    def _read_counter_word(self, bucket: int) -> List[int]:
        """All l slot counters of a bucket: one on-chip read (one word)."""
        self.mem.onchip_read("counter-word")
        return self._peek_counter_word(bucket)

    def _peek_counter_word(self, bucket: int) -> List[int]:
        """The word's values without the charge (batched kernels charge the
        whole batch in one record call)."""
        return [
            self._counters.peek(self._slot_index(bucket, slot))
            for slot in range(self.slots)
        ]

    def _set_counter(self, bucket: int, slot: int, value: int) -> None:
        self._counters.set(self._slot_index(bucket, slot), value)

    # ------------------------------------------------------------------
    # off-chip bucket access
    # ------------------------------------------------------------------

    def _read_bucket(
        self, bucket: int
    ) -> Tuple[List[Optional[Key]], List[Any], List[Optional[SlotMap]], bool]:
        """One off-chip access retrieves the whole bucket plus its flag."""
        self.mem.offchip_read("bucket")
        base = self._slot_index(bucket, 0)
        return (
            self._keys[base : base + self.slots],
            self._values[base : base + self.slots],
            self._slotmaps[base : base + self.slots],
            self._flags.test(bucket),
        )

    def _write_slot(
        self, bucket: int, slot: int, key: Key, value: Any, slotmap: SlotMap
    ) -> None:
        self.mem.offchip_write("bucket")
        index = self._slot_index(bucket, slot)
        self._keys[index] = key
        self._values[index] = value
        self._slotmaps[index] = slotmap

    def _patch_slotmap(self, bucket: int, slot: int, slotmap: SlotMap) -> None:
        """Refresh a surviving copy's sibling metadata (cheap off-chip write)."""
        self.mem.offchip_write("slotmap-fixup")
        self._slotmaps[self._slot_index(bucket, slot)] = slotmap

    # ------------------------------------------------------------------
    # insertion (Algorithm 1)
    # ------------------------------------------------------------------

    def put(self, key: KeyLike, value: Any = None) -> InsertOutcome:
        k = self._canonical(key)
        return self._insert_canonical(k, value)

    def _insert_canonical(
        self, k: Key, value: Any, charge_words: bool = True
    ) -> InsertOutcome:
        cands = self._candidates(k)
        if charge_words:
            words = {bucket: self._read_counter_word(bucket) for bucket in cands}
        else:
            # put_many's deferred phase already charged these d word reads.
            words = {bucket: self._peek_counter_word(bucket) for bucket in cands}
        placements = self._place_by_algorithm1(k, value, cands, words)
        if placements:
            self._n_main += 1
            return InsertOutcome(InsertStatus.STORED, kicks=0, copies=placements)
        self.events.note_collision(len(self) + 1)
        return self._insert_with_kicks(k, value, cands)

    def _find_slot_with(self, word: List[int], target: int) -> Optional[int]:
        for slot, value in enumerate(word):
            if value == target:
                return slot
        return None

    def _place_by_algorithm1(
        self,
        k: Key,
        value: Any,
        cands: Sequence[int],
        words: Dict[int, List[int]],
    ) -> int:
        """Algorithm 1's placement phases; returns copies placed (0 = collision).

        ``words`` is a live local mirror of the candidates' counter words;
        sibling decrements triggered by our own overwrites are folded back
        into it so later phases see fresh values.
        """
        chosen: Dict[int, int] = {}  # bucket -> slot we will occupy
        remaining = list(cands)
        # Phase A: occupy one empty slot in every bucket that has one.
        for bucket in list(remaining):
            slot = self._find_slot_with(words[bucket], 0)
            if slot is not None:
                chosen[bucket] = slot
                remaining.remove(bucket)
        # Phases B/C generalised: overwrite counter-c slots for c from d down
        # to 2, fullest buckets first, while the overwrite leaves the
        # inserted item with no more copies than the victim retains
        # (len(chosen)+1 <= c-1).  For d=3 this is exactly Algorithm 1's
        # counter-3 then counter-2 phases with their early-return conditions.
        remaining.sort(key=lambda bucket: -sum(words[bucket]))
        for c in range(self.d, 1, -1):
            for bucket in list(remaining):
                if len(chosen) > c - 2:
                    break
                slot = self._find_slot_with(words[bucket], c)
                if slot is None:
                    continue
                self._claim_overwrite(bucket, slot, c, words)
                chosen[bucket] = slot
                remaining.remove(bucket)
        if not chosen:
            return 0
        self._commit_placements(k, value, cands, chosen)
        return len(chosen)

    def _commit_placements(
        self, k: Key, value: Any, cands: Sequence[int], chosen: Dict[int, int]
    ) -> None:
        slotmap_list: List[Optional[int]] = [None] * self.d
        for bucket, slot in chosen.items():
            slotmap_list[self._position_of(bucket)] = slot
        slotmap = tuple(slotmap_list)
        total = len(chosen)
        for bucket, slot in chosen.items():
            self._write_slot(bucket, slot, k, value, slotmap)
            self._set_counter(bucket, slot, total)
            if self._tombstones is not None:
                self._tombstones.clear_bit(self._slot_index(bucket, slot))

    def _claim_overwrite(
        self, bucket: int, slot: int, victim_value: int, words: Dict[int, List[int]]
    ) -> None:
        """Retire the copy in (bucket, slot), decrementing the victim's
        remaining copies and patching their metadata."""
        keys, values, slotmaps, _ = self._read_bucket(bucket)
        victim_key = keys[slot]
        victim_map = slotmaps[slot]
        if victim_key is None or victim_map is None:
            raise InvariantViolationError(
                f"overwrite target ({bucket}, {slot}) holds no live entry"
            )
        lost_position = self._position_of(bucket)
        victim_cands = self._candidates(victim_key)
        new_map_list = list(victim_map)
        new_map_list[lost_position] = None
        new_map = tuple(new_map_list)
        for position, sibling_slot in enumerate(victim_map):
            if sibling_slot is None or position == lost_position:
                continue
            sibling_bucket = victim_cands[position]
            self._set_counter(sibling_bucket, sibling_slot, victim_value - 1)
            self._patch_slotmap(sibling_bucket, sibling_slot, new_map)
            if sibling_bucket in words:
                words[sibling_bucket][sibling_slot] = victim_value - 1

    # ------------------------------------------------------------------
    # kicks
    # ------------------------------------------------------------------

    def _insert_with_kicks(
        self, k: Key, value: Any, cands: List[int]
    ) -> InsertOutcome:
        kicks = 0
        cur_key, cur_value = k, value
        prev_bucket: Optional[int] = None
        while kicks < self.maxloop:
            choices = [bucket for bucket in cands if bucket != prev_bucket]
            if self._policy.exhausted(choices):
                break
            victim_bucket = self._policy.choose(choices, self._rng)
            self._policy.record_eviction(
                victim_bucket, [b for b in cands if b != victim_bucket]
            )
            victim_slot = self._rng.randrange(self.slots)
            keys, values, slotmaps, _ = self._read_bucket(victim_bucket)
            victim_key = keys[victim_slot]
            victim_value_stored = values[victim_slot]
            assert victim_key is not None
            own_map_list: List[Optional[int]] = [None] * self.d
            own_map_list[self._position_of(victim_bucket)] = victim_slot
            self._write_slot(
                victim_bucket, victim_slot, cur_key, cur_value, tuple(own_map_list)
            )
            # Sole copy replaced by another sole copy: counter stays 1.
            kicks += 1
            self.total_kicks += 1
            cur_key, cur_value = victim_key, victim_value_stored
            prev_bucket = victim_bucket
            cands = self._candidates(cur_key)
            words = {bucket: self._read_counter_word(bucket) for bucket in cands}
            placements = self._place_by_algorithm1(cur_key, cur_value, cands, words)
            if placements:
                self._n_main += 1
                return InsertOutcome(
                    InsertStatus.STORED, kicks=kicks, copies=placements, collided=True
                )
        self.events.note_failure(len(self) + 1)
        return self._handle_failure(cur_key, cur_value, cands, kicks)

    def _handle_failure(
        self, key: Key, value: Any, cands: List[int], kicks: int
    ) -> InsertOutcome:
        if self._stash is not None:
            for bucket in cands:
                self._flags.mark(bucket)
                self.mem.offchip_write("flag")
            self._stash.add(key, value)
            return InsertOutcome(InsertStatus.STASHED, kicks=kicks, collided=True)
        if self.on_failure is FailurePolicy.REHASH:
            raise UnsupportedOperationError(
                "B-McCuckoo supports FailurePolicy.STASH or FAIL; use McCuckoo "
                "for the rehash path"
            )
        raise TableFullError(
            f"insertion failed after {kicks} kicks; displaced key {key:#x}"
        )

    # ------------------------------------------------------------------
    # lookup (Algorithm 2)
    # ------------------------------------------------------------------

    def _bucket_sum_is_dead(self, bucket: int, word: List[int]) -> bool:
        """True when the bucket provably holds nothing (sum of counters 0,
        no tombstones)."""
        if any(word):
            return False
        if self._tombstones is None:
            return True
        return not any(
            self._tombstones.peek(self._slot_index(bucket, slot))
            for slot in range(self.slots)
        )

    def lookup(self, key: KeyLike) -> LookupOutcome:
        k = self._canonical(key)
        cands = self._candidates(k)
        if not self.lookup_counter_screen:
            return self._lookup_unscreened(k, cands)
        words = {bucket: self._read_counter_word(bucket) for bucket in cands}
        return self._lookup_screened(k, cands, words)

    def _lookup_unscreened(self, k: Key, cands: Sequence[int]) -> LookupOutcome:
        # §IV.C: at very high load "it may be a good idea just to do the
        # lookup the old way" — skip the on-chip counters entirely.
        # Only sound without deletions (no stale slots can exist).
        buckets_read = 0
        flags_read: List[bool] = []
        for bucket in cands:
            keys, values, _, flag = self._read_bucket(bucket)
            buckets_read += 1
            flags_read.append(flag)
            for slot in range(self.slots):
                if keys[slot] == k:
                    return LookupOutcome(
                        found=True,
                        value=values[slot],
                        buckets_read=buckets_read,
                    )
        if (
            self._stash is None
            or len(self._stash) == 0
            or not all(flags_read)
        ):
            return LookupOutcome(found=False, buckets_read=buckets_read)
        found, value = self._stash.lookup(k)
        return LookupOutcome(
            found=found,
            value=value if found else None,
            from_stash=found,
            checked_stash=True,
            buckets_read=buckets_read,
        )

    def _lookup_screened(
        self, k: Key, cands: Sequence[int], words: Dict[int, List[int]]
    ) -> LookupOutcome:
        dead = [bucket for bucket in cands
                if self._bucket_sum_is_dead(bucket, words[bucket])]
        if dead and self.deletion_mode is not DeletionMode.RESET:
            # An insertion of k would have left a copy in every candidate
            # (or found it full): an untouched bucket proves absence.
            return LookupOutcome(found=False)
        buckets_read = 0
        flags_read: List[bool] = []
        for bucket in cands:
            if bucket in dead:
                continue
            word = words[bucket]
            keys, values, _, flag = self._read_bucket(bucket)
            buckets_read += 1
            flags_read.append(flag)
            for slot in range(self.slots):
                if keys[slot] == k and word[slot] > 0:
                    return LookupOutcome(
                        found=True, value=values[slot], buckets_read=buckets_read
                    )
        if (
            self._stash is None
            or len(self._stash) == 0  # on-chip population register
            or not flags_read
            or not all(flags_read)
        ):
            return LookupOutcome(found=False, buckets_read=buckets_read)
        found, value = self._stash.lookup(k)
        return LookupOutcome(
            found=found,
            value=value if found else None,
            from_stash=found,
            checked_stash=True,
            buckets_read=buckets_read,
        )

    # ------------------------------------------------------------------
    # batched kernels
    # ------------------------------------------------------------------
    #
    # delete_many keeps the interface's scalar loop: Algorithm 3 reads
    # counter words lazily (it stops at the first live bucket), so a bulk
    # pre-read would change the charged totals.

    def lookup_many(self, keys: Sequence[KeyLike]) -> List[LookupOutcome]:
        d = self.d
        screen = self.lookup_counter_screen
        outcomes: List[LookupOutcome] = []
        pending: List[Tuple[Key, List[int]]] = []
        for key in keys:
            k = self._canonical(key)
            pending.append((k, self._candidates(k)))
        if screen:
            # One record call charges the whole batch's counter-word reads.
            self.mem.onchip_read("counter-word", d * len(pending))
        for k, cands in pending:
            if not screen:
                outcomes.append(self._lookup_unscreened(k, cands))
                continue
            words = {bucket: self._peek_counter_word(bucket) for bucket in cands}
            outcomes.append(self._lookup_screened(k, cands, words))
        return outcomes

    def put_many(self, pairs: Iterable[Tuple[KeyLike, Any]]) -> List[InsertOutcome]:
        """Two-phase batched insert (see :meth:`McCuckoo.put_many`).

        Algorithm 1's placement fails only when every candidate bucket is
        full of sole copies; placements never empty a slot and never claim a
        counter-1 slot, so a collided key still collides when deferred and
        the result equals scalar puts in the reordered sequence.
        """
        items = [(self._canonical(key), value) for key, value in pairs]
        outcomes: List[Optional[InsertOutcome]] = [None] * len(items)
        deferred: List[int] = []
        for i, (k, value) in enumerate(items):
            cands = self._candidates(k)
            self.mem.onchip_read("counter-word", self.d)
            words = {bucket: self._peek_counter_word(bucket) for bucket in cands}
            placements = self._place_by_algorithm1(k, value, cands, words)
            if placements:
                self._n_main += 1
                outcomes[i] = InsertOutcome(
                    InsertStatus.STORED, kicks=0, copies=placements
                )
            else:
                deferred.append(i)
        for i in deferred:
            k, value = items[i]
            # Phase 1 already charged this key's d counter-word reads.
            outcomes[i] = self._insert_canonical(k, value, charge_words=False)
        return outcomes  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # deletion (Algorithm 3)
    # ------------------------------------------------------------------

    def delete(self, key: KeyLike) -> DeleteOutcome:
        if self.deletion_mode is DeletionMode.DISABLED:
            raise UnsupportedOperationError(
                "this table was built with DeletionMode.DISABLED"
            )
        k = self._canonical(key)
        cands = self._candidates(k)
        flags_read: List[bool] = []
        for bucket in cands:
            word = self._read_counter_word(bucket)
            if self._bucket_sum_is_dead(bucket, word):
                if self.deletion_mode is not DeletionMode.RESET:
                    return DeleteOutcome(deleted=False)
                continue
            keys, _, slotmaps, flag = self._read_bucket(bucket)
            flags_read.append(flag)
            for slot in range(self.slots):
                if keys[slot] == k and word[slot] > 0:
                    slotmap = slotmaps[slot]
                    assert slotmap is not None
                    copies = self._zero_copies(k, slotmap)
                    self._n_main -= 1
                    return DeleteOutcome(deleted=True, copies_removed=copies)
        if (self._stash is not None and len(self._stash) and flags_read
                and all(flags_read)):
            if self._stash.delete(k):
                return DeleteOutcome(
                    deleted=True, copies_removed=1, from_stash=True, checked_stash=True
                )
            return DeleteOutcome(deleted=False, checked_stash=True)
        return DeleteOutcome(deleted=False)

    def _zero_copies(self, k: Key, slotmap: SlotMap) -> int:
        """Reset all copy counters named by the (fresh) sibling metadata."""
        cands = self._candidates(k)
        copies = 0
        for position, slot in enumerate(slotmap):
            if slot is None:
                continue
            bucket = cands[position]
            self._set_counter(bucket, slot, 0)
            if self._tombstones is not None:
                self._tombstones.mark(self._slot_index(bucket, slot))
            copies += 1
        return copies

    def try_update(self, key: KeyLike, value: Any) -> Optional[InsertOutcome]:
        k = self._canonical(key)
        cands = self._candidates(k)
        flags_read: List[bool] = []
        for bucket in cands:
            word = self._read_counter_word(bucket)
            if self._bucket_sum_is_dead(bucket, word):
                if self.deletion_mode is not DeletionMode.RESET:
                    return None
                continue
            keys, _, slotmaps, flag = self._read_bucket(bucket)
            flags_read.append(flag)
            for slot in range(self.slots):
                if keys[slot] == k and word[slot] > 0:
                    slotmap = slotmaps[slot]
                    assert slotmap is not None
                    copies = 0
                    for position, sibling_slot in enumerate(slotmap):
                        if sibling_slot is None:
                            continue
                        self._write_slot(
                            cands[position], sibling_slot, k, value, slotmap
                        )
                        copies += 1
                    return InsertOutcome(InsertStatus.UPDATED, copies=copies)
        if (self._stash is not None and len(self._stash) and flags_read
                and all(flags_read)):
            if self._stash.delete(k):
                self._stash.add(k, value)
                return InsertOutcome(InsertStatus.UPDATED, copies=1)
        return None

    # ------------------------------------------------------------------
    # introspection (unaccounted)
    # ------------------------------------------------------------------

    def copies_of(self, key: KeyLike) -> List[Tuple[int, int]]:
        """(bucket, slot) pairs currently holding live copies of ``key``."""
        k = self._canonical(key)
        found: List[Tuple[int, int]] = []
        for bucket in self._candidates(k):
            for slot in range(self.slots):
                index = self._slot_index(bucket, slot)
                if self._counters.peek(index) > 0 and self._keys[index] == k:
                    found.append((bucket, slot))
        return found

    def items(self) -> Iterator[Tuple[Key, Any]]:
        seen: set = set()
        for index in range(self.capacity):
            if self._counters.peek(index) == 0:
                continue
            key = self._keys[index]
            if key not in seen:
                seen.add(key)
                yield key, self._values[index]
        if self._stash is not None:
            yield from self._stash.items()

    @property
    def onchip_bytes(self) -> int:
        total = self._counters.storage_bytes
        if self._tombstones is not None:
            total += self._tombstones.storage_bytes
        return total

    def counter_histogram(self) -> Dict[int, int]:
        histogram: Dict[int, int] = {}
        for value in self._counters:
            histogram[value] = histogram.get(value, 0) + 1
        return histogram
