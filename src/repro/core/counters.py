"""Packed fixed-width counter arrays (the on-chip helper structure).

McCuckoo keeps one small counter per off-chip bucket (2 bits when d=3)
recording how many copies the occupying item currently has in the table.
:class:`PackedArray` packs such counters into a ``bytearray`` exactly as a
hardware SRAM block would, and reports its traffic to a
:class:`~repro.memory.model.MemoryModel` so experiments can charge on-chip
accesses separately from off-chip ones.

``get``/``set`` are the *accounted* accessors used on the operation paths;
``peek``/``poke`` bypass accounting and exist for construction, invariant
checking and tests.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence

from .._numpy import numpy_or_none
from ..memory.model import MemoryModel, Op, Tier

_SUPPORTED_BITS = (1, 2, 4, 8)

#: counters per 64-bit SRAM word, the granularity PER_WORD charging bills at
_WORD_BITS = 64


class PackedArray:
    """``length`` unsigned integers of ``bits`` bits each, byte-packed."""

    def __init__(
        self,
        length: int,
        bits: int,
        mem: Optional[MemoryModel] = None,
        tier: Tier = Tier.ON_CHIP,
        label: str = "counter",
    ) -> None:
        if length <= 0:
            raise ValueError("length must be positive")
        if bits not in _SUPPORTED_BITS:
            raise ValueError(f"bits must be one of {_SUPPORTED_BITS}")
        self.length = length
        self.bits = bits
        self.max_value = (1 << bits) - 1
        self._per_byte = 8 // bits
        self._index_shift = self._per_byte.bit_length() - 1  # per_byte is 2^k
        self._mask = self.max_value
        self._data = bytearray((length + self._per_byte - 1) // self._per_byte)
        self._mem = mem
        self._tier = tier
        self._label = label

    # -- unaccounted access ------------------------------------------------

    def peek(self, index: int) -> int:
        """Read without charging a memory access (for checks and tests)."""
        if not 0 <= index < self.length:
            raise IndexError(f"index {index} out of range [0, {self.length})")
        byte, shift = divmod(index, self._per_byte)
        return (self._data[byte] >> (shift * self.bits)) & self._mask

    def poke(self, index: int, value: int) -> None:
        """Write without charging a memory access."""
        if not 0 <= index < self.length:
            raise IndexError(f"index {index} out of range [0, {self.length})")
        if not 0 <= value <= self.max_value:
            raise ValueError(f"value {value} does not fit in {self.bits} bits")
        byte, shift = divmod(index, self._per_byte)
        offset = shift * self.bits
        self._data[byte] = (self._data[byte] & ~(self._mask << offset)) | (
            value << offset
        )

    def distinct_words(self, indices: Sequence[int]) -> int:
        """How many distinct 64-bit SRAM words ``indices`` touch.

        This is the explicit word-read dedup PER_WORD charging is defined
        by: a candidate list that hits the same word twice (or the same
        counter twice) costs one word read, not two.  Both the Python and
        the NumPy bulk accessors bill through this definition.
        """
        per_word = _WORD_BITS // self.bits
        return len({index // per_word for index in indices})

    def _distinct_words_array(self, np: Any, indices: Any) -> int:
        per_word = _WORD_BITS // self.bits
        return int(np.unique(indices // per_word).size)

    # -- accounted access ----------------------------------------------------

    def get(self, index: int) -> int:
        """Read one counter, charging one on-chip read."""
        if self._mem is not None:
            self._mem.record(self._tier, Op.READ, self._label)
        return self.peek(index)

    def set(self, index: int, value: int) -> None:
        """Write one counter, charging one on-chip write."""
        if self._mem is not None:
            self._mem.record(self._tier, Op.WRITE, self._label)
        self.poke(index, value)

    def get_many(self, indices: List[int]) -> List[int]:
        """Read several counters (one charged access each)."""
        return [self.get(i) for i in indices]

    def get_block(self, indices: Sequence[int]) -> List[int]:
        """Bulk read for the batched kernels: values in one pass, charged
        according to the accountant's :class:`CounterCharging` mode.

        In the default ``PER_COUNTER`` mode the charge is exactly what
        ``get_many`` would record (one access per counter), so batched and
        scalar operations are indistinguishable to the paper figures.  In
        ``PER_WORD`` mode the charge is one access per distinct 64-bit word
        touched — the word-wide read port a hardware counter block exposes,
        with repeated words deduplicated by :meth:`distinct_words`.
        """
        if self._mem is not None and indices:
            self._mem.charge_counter_block(
                self._tier,
                Op.READ,
                self._label,
                len(indices),
                lambda: self.distinct_words(indices),
            )
        if not indices:
            return []
        if min(indices) < 0 or max(indices) >= self.length:
            bad = [i for i in indices if not 0 <= i < self.length]
            raise IndexError(f"index {bad[0]} out of range [0, {self.length})")
        data = self._data
        bits = self.bits
        mask = self._mask
        shift = self._index_shift
        slot_mask = self._per_byte - 1
        return [
            (data[index >> shift] >> ((index & slot_mask) * bits)) & mask
            for index in indices
        ]

    def set_block(self, indices: Sequence[int], value: int) -> None:
        """Bulk write of one ``value`` to several counters, charged like
        :meth:`get_block` (per counter, or per distinct word in
        ``PER_WORD`` mode)."""
        if self._mem is not None and indices:
            self._mem.charge_counter_block(
                self._tier,
                Op.WRITE,
                self._label,
                len(indices),
                lambda: self.distinct_words(indices),
            )
        for index in indices:
            self.poke(index, value)

    # -- vectorized access (NumPy engine) ------------------------------------

    def get_block_array(self, indices: Any) -> Any:
        """Vectorized :meth:`get_block` over a NumPy integer index array.

        Returns an integer array of counter values in index order.  The
        charge is identical to :meth:`get_block` on ``indices.tolist()``
        in both charging modes: ``PER_COUNTER`` bills ``indices.size``
        reads, ``PER_WORD`` bills one read per distinct word (deduped with
        ``np.unique``, matching :meth:`distinct_words` exactly).
        """
        np = numpy_or_none()
        if np is None:  # pragma: no cover - callers gate on the engine
            raise RuntimeError("get_block_array requires numpy")
        n = int(indices.size)
        if n == 0:
            return indices
        lo, hi = int(indices.min()), int(indices.max())
        if lo < 0 or hi >= self.length:
            bad = lo if lo < 0 else hi
            raise IndexError(f"index {bad} out of range [0, {self.length})")
        if self._mem is not None:
            self._mem.charge_counter_block(
                self._tier,
                Op.READ,
                self._label,
                n,
                lambda: self._distinct_words_array(np, indices),
            )
        view = np.frombuffer(self._data, dtype=np.uint8)
        offsets = (indices & (self._per_byte - 1)) * self.bits
        return (view[indices >> self._index_shift] >> offsets) & self._mask

    def set_block_array(self, indices: Any, value: int) -> None:
        """Vectorized :meth:`set_block`: one ``value`` to an index array.

        Duplicate indices (and distinct counters sharing a byte) are
        handled with unbuffered ``ufunc.at`` read-modify-writes, so the
        result is identical to the scalar loop.  Charging matches
        :meth:`set_block` in both modes.
        """
        np = numpy_or_none()
        if np is None:  # pragma: no cover - callers gate on the engine
            raise RuntimeError("set_block_array requires numpy")
        n = int(indices.size)
        if n == 0:
            return
        if not 0 <= value <= self.max_value:
            raise ValueError(f"value {value} does not fit in {self.bits} bits")
        lo, hi = int(indices.min()), int(indices.max())
        if lo < 0 or hi >= self.length:
            bad = lo if lo < 0 else hi
            raise IndexError(f"index {bad} out of range [0, {self.length})")
        if self._mem is not None:
            self._mem.charge_counter_block(
                self._tier,
                Op.WRITE,
                self._label,
                n,
                lambda: self._distinct_words_array(np, indices),
            )
        view = np.frombuffer(self._data, dtype=np.uint8)
        byte_idx = indices >> self._index_shift
        offsets = ((indices & (self._per_byte - 1)) * self.bits).astype(np.uint8)
        np.bitwise_and.at(
            view, byte_idx, (~(self._mask << offsets)).astype(np.uint8)
        )
        np.bitwise_or.at(view, byte_idx, (value << offsets).astype(np.uint8))

    # -- bulk helpers --------------------------------------------------------

    def fill(self, value: int = 0) -> None:
        """Unaccounted bulk reset (table construction / clear).

        Rewrites the backing store *in place* (one C-level slice
        assignment), so NumPy views created over ``_data`` by the
        vectorized accessors observe the reset instead of dangling on a
        replaced buffer.
        """
        if not 0 <= value <= self.max_value:
            raise ValueError(f"value {value} does not fit in {self.bits} bits")
        pattern = 0
        for slot in range(self._per_byte):
            pattern |= value << (slot * self.bits)
        self._data[:] = bytes((pattern,)) * len(self._data)

    def __len__(self) -> int:
        return self.length

    def __iter__(self) -> Iterator[int]:
        return (self.peek(i) for i in range(self.length))

    def nonzero_count(self) -> int:
        """How many counters are non-zero (unaccounted; used by tests)."""
        return sum(1 for v in self if v)

    @property
    def storage_bytes(self) -> int:
        """Bytes of on-chip SRAM this array would occupy."""
        return len(self._data)


class BitArray(PackedArray):
    """1-bit specialisation used for tombstone marks and stash flags."""

    def __init__(
        self,
        length: int,
        mem: Optional[MemoryModel] = None,
        tier: Tier = Tier.ON_CHIP,
        label: str = "bit",
    ) -> None:
        super().__init__(length, bits=1, mem=mem, tier=tier, label=label)

    def test(self, index: int) -> bool:
        return bool(self.peek(index))

    def mark(self, index: int) -> None:
        self.poke(index, 1)

    def clear_bit(self, index: int) -> None:
        self.poke(index, 0)
