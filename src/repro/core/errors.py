"""Exception hierarchy for the repro library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class TableFullError(ReproError):
    """An insertion could not be completed and no stash is configured."""


class UnsupportedOperationError(ReproError):
    """The table was configured without support for the requested operation.

    Raised, for example, when deleting from a table built with
    ``deletion_mode=DeletionMode.DISABLED`` (the mode under which lookup
    principle 1 — "any zero counter proves absence" — is sound).
    """


class InvariantViolationError(ReproError):
    """An internal structural invariant was found broken.

    This always indicates a bug in the implementation, never a user error;
    the invariant checkers in :mod:`repro.core.invariants` raise it with a
    description of every violated condition.
    """


class ConfigurationError(ReproError):
    """Invalid construction parameters (sizes, modes, policies)."""
