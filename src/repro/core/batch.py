"""AMAC-style batched lookups.

Kocberber et al.'s Asynchronous Memory Access Chaining (VLDB'15 — the
paper's [34]) hides memory latency by keeping several lookups in flight:
while one waits for its bucket to arrive, the next issues its own read.
The McCuckoo paper calls this "orthogonal" to its design; this module
demonstrates the composition.

Tables expose ``lookup_steps(key)`` — a generator that yields once before
every off-chip access.  :func:`batched_lookup` round-robins up to
``depth`` such generators, so each scheduler *epoch* overlaps up to
``depth`` off-chip reads.  With a memory system that can serve ``depth``
outstanding reads, wall-clock time scales with epochs instead of total
reads; the reported ``overlap_factor`` (total reads / epochs) is the
latency-hiding AMAC achieves on that workload.

Because McCuckoo's counters answer many lookups with zero off-chip reads,
its epochs drop even faster than its read count — AMAC and McCuckoo
compose, exactly as the paper claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, List, Sequence

from ..hashing import KeyLike
from .results import LookupOutcome


@dataclass
class BatchResult:
    """Outcome of one batched-lookup run."""

    outcomes: List[LookupOutcome] = field(default_factory=list)
    epochs: int = 0
    total_steps: int = 0
    depth: int = 1
    prescreened: int = 0
    """Keys answered by the bulk counter pre-screen, never entering the
    scheduler (no generator, no epochs)."""

    @property
    def overlap_factor(self) -> float:
        """How many reads were overlapped per epoch (1.0 = fully serial)."""
        if self.epochs == 0:
            return float(self.depth) if self.total_steps else 1.0
        return self.total_steps / self.epochs

    @property
    def hits(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.found)


def _advance(generator) -> tuple:
    """Advance one step; returns (finished, outcome_or_None)."""
    try:
        next(generator)
        return False, None
    except StopIteration as stop:
        return True, stop.value


def batched_lookup(
    table: Any,
    keys: Sequence[KeyLike],
    depth: int = 8,
    prescreen: bool = False,
) -> BatchResult:
    """Run ``keys`` through ``table.lookup_steps`` with ``depth``-way
    interleaving.

    Results are returned in input order.  ``table`` must provide
    ``lookup_steps`` (McCuckoo and CuckooTable do); a plain ``lookup`` is
    *not* enough because it cannot be suspended mid-flight.

    With ``prescreen`` (and a table exposing ``prescreen_absent``), one
    bulk counter read screens the whole batch first: keys the counters
    prove absent get their miss outcome directly and never enter the
    scheduler.  Accounting note: surviving keys re-read their counters
    inside ``lookup_steps``, so the charged counter totals are higher than
    an unscreened run — the off-chip reads and epochs are what shrink.
    """
    if depth < 1:
        raise ValueError("depth must be at least 1")
    if not hasattr(table, "lookup_steps"):
        raise TypeError(
            f"{type(table).__name__} has no lookup_steps generator; "
            "batched lookups need a suspendable lookup"
        )
    result = BatchResult(depth=depth)
    result.outcomes = [None] * len(keys)  # type: ignore[list-item]
    if prescreen and hasattr(table, "prescreen_absent") and len(keys):
        screened_miss = LookupOutcome(found=False)
        absent = table.prescreen_absent(keys)
        survivors = []
        for index, (key, is_absent) in enumerate(zip(keys, absent)):
            if is_absent:
                result.outcomes[index] = screened_miss
                result.prescreened += 1
            else:
                survivors.append((index, key))
        queue = survivors
    else:
        queue = list(enumerate(keys))
    queue.reverse()  # pop() from the front of the input order
    in_flight: List[tuple] = []

    def refill() -> None:
        while len(in_flight) < depth and queue:
            index, key = queue.pop()
            generator = table.lookup_steps(key)
            finished, outcome = _advance(generator)
            if finished:
                # answered entirely on-chip: no epoch consumed
                result.outcomes[index] = outcome
            else:
                result.total_steps += 1
                in_flight.append((index, generator))

    refill()
    while in_flight:
        # one epoch: every in-flight lookup's outstanding read completes
        result.epochs += 1
        still_flying: List[tuple] = []
        for index, generator in in_flight:
            finished, outcome = _advance(generator)
            if finished:
                result.outcomes[index] = outcome
            else:
                result.total_steps += 1
                still_flying.append((index, generator))
        in_flight = still_flying
        refill()
    return result


def serial_epochs(table: Any, keys: Iterable[KeyLike]) -> int:
    """Epochs a fully serial execution would take (= total off-chip steps)."""
    total = 0
    for key in keys:
        generator = table.lookup_steps(key)
        while True:
            finished, _ = _advance(generator)
            if finished:
                break
            total += 1
    return total
