"""Multiset support via indirection (§III.H).

McCuckoo's redundant copies of one key must stay identical, so a multiset
cannot be expressed by giving copies different values.  The paper instead
suggests using the table as an *index*: the stored value is a pointer to an
external record area holding all values of the key.  :class:`McCuckooMultiMap`
implements exactly that on top of any :class:`HashTable`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Tuple

from ..hashing import Key, KeyLike
from .interface import HashTable
from .results import InsertOutcome, InsertStatus


class McCuckooMultiMap:
    """Key → multiset-of-values, indexed by a multi-copy cuckoo table.

    The underlying table maps each distinct key to a record-area handle;
    every copy of the key stores the same handle, preserving the
    copies-are-identical invariant.
    """

    def __init__(self, table_factory: Callable[[], HashTable]) -> None:
        self._index = table_factory()
        self._records: Dict[int, List[Any]] = {}
        self._next_handle = 0

    @property
    def index(self) -> HashTable:
        """The underlying cuckoo index (for stats and accounting)."""
        return self._index

    def add(self, key: KeyLike, value: Any) -> InsertOutcome:
        """Append one value under ``key``."""
        outcome = self._index.lookup(key)
        if outcome.found:
            self._records[outcome.value].append(value)
            return InsertOutcome(InsertStatus.UPDATED)
        handle = self._next_handle
        self._next_handle += 1
        self._records[handle] = [value]
        result = self._index.put(key, handle)
        if result.failed:
            del self._records[handle]
        return result

    def get(self, key: KeyLike) -> List[Any]:
        """All values stored under ``key`` (empty list when absent)."""
        outcome = self._index.lookup(key)
        if not outcome.found:
            return []
        return list(self._records[outcome.value])

    def count(self, key: KeyLike) -> int:
        return len(self.get(key))

    def remove_value(self, key: KeyLike, value: Any) -> bool:
        """Remove one occurrence of ``value`` under ``key``."""
        outcome = self._index.lookup(key)
        if not outcome.found:
            return False
        values = self._records[outcome.value]
        try:
            values.remove(value)
        except ValueError:
            return False
        if not values:
            self._discard_key(key, outcome.value)
        return True

    def remove_all(self, key: KeyLike) -> int:
        """Remove every value under ``key``; returns how many were removed."""
        outcome = self._index.lookup(key)
        if not outcome.found:
            return 0
        removed = len(self._records[outcome.value])
        self._discard_key(key, outcome.value)
        return removed

    def _discard_key(self, key: KeyLike, handle: int) -> None:
        del self._records[handle]
        self._index.delete(key)

    def __contains__(self, key: KeyLike) -> bool:
        return key in self._index

    def __len__(self) -> int:
        """Total number of stored values across all keys."""
        return sum(len(values) for values in self._records.values())

    def distinct_keys(self) -> int:
        return len(self._index)

    def items(self) -> Iterator[Tuple[Key, List[Any]]]:
        for key, handle in self._index.items():
            yield key, list(self._records[handle])
