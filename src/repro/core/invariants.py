"""Structural invariant checkers for the multi-copy tables.

These walk the private state of a table (unaccounted) and verify every
property the algorithms rely on.  They are used heavily by the test suite —
in particular the property-based tests call them after every operation — and
raise :class:`InvariantViolationError` listing all broken conditions.
"""

from __future__ import annotations

from typing import List

from .blocked import BlockedMcCuckoo
from .config import DeletionMode
from .errors import InvariantViolationError
from .mccuckoo import McCuckoo


def check_mccuckoo(table: McCuckoo) -> None:
    """Verify a single-slot McCuckoo table's invariants.

    1. A live bucket's key hashes to that bucket.
    2. The counter of every live bucket equals the item's actual number of
       live copies, and all copies agree on value and stored payload.
    3. In METADATA mode the copy bitmap of every live entry matches reality.
    4. Distinct live keys equal the table's item count.
    5. Without deletions, every stashed item still sees counter 1 and a set
       flag on all of its candidates.
    """
    problems: List[str] = []
    live_keys = {}
    for bucket in range(table.capacity):
        value = table._counters.peek(bucket)
        if value == 0:
            continue
        key = table._keys[bucket]
        if key is None:
            problems.append(f"bucket {bucket}: counter {value} but no entry")
            continue
        cands = table._candidates(key)
        if bucket not in cands:
            problems.append(f"bucket {bucket}: key {key:#x} does not hash here")
            continue
        copies = [
            b
            for b in cands
            if table._counters.peek(b) > 0 and table._keys[b] == key
        ]
        if len(copies) != value:
            problems.append(
                f"bucket {bucket}: counter {value} but key {key:#x} has "
                f"{len(copies)} live copies"
            )
        for other in copies:
            if table._counters.peek(other) != value:
                problems.append(
                    f"key {key:#x}: copies disagree on counter value "
                    f"({bucket} vs {other})"
                )
            if table._values[other] != table._values[bucket]:
                problems.append(f"key {key:#x}: copies disagree on stored value")
        if table._masks is not None:
            expected_mask = 0
            for b in copies:
                expected_mask |= 1 << table._position_of(b)
            if table._masks[bucket] != expected_mask:
                problems.append(
                    f"bucket {bucket}: stale copy bitmap "
                    f"{table._masks[bucket]:#b} != {expected_mask:#b}"
                )
        live_keys[key] = True
    if len(live_keys) != table.main_items:
        problems.append(
            f"main-table count {table.main_items} != {len(live_keys)} live keys"
        )
    if table.stash is not None and table.deletion_mode is DeletionMode.DISABLED:
        for key, _ in table.stash.items():
            for b in table._candidates(key):
                if table._counters.peek(b) != 1:
                    problems.append(
                        f"stashed key {key:#x}: candidate {b} has counter "
                        f"{table._counters.peek(b)} != 1"
                    )
                if not table._flags.test(b):
                    problems.append(f"stashed key {key:#x}: flag unset at {b}")
    if problems:
        raise InvariantViolationError("; ".join(problems))


def check_blocked(table: BlockedMcCuckoo) -> None:
    """Verify a blocked B-McCuckoo table's invariants.

    Mirrors :func:`check_mccuckoo` at slot granularity and additionally
    checks that every live entry's sibling-slot metadata is fresh.
    """
    problems: List[str] = []
    live_keys = {}
    n_bucket_total = table.d * table.n_buckets
    for bucket in range(n_bucket_total):
        for slot in range(table.slots):
            index = table._slot_index(bucket, slot)
            value = table._counters.peek(index)
            if value == 0:
                continue
            key = table._keys[index]
            if key is None:
                problems.append(f"slot ({bucket},{slot}): counter but no entry")
                continue
            cands = table._candidates(key)
            if bucket not in cands:
                problems.append(
                    f"slot ({bucket},{slot}): key {key:#x} does not hash here"
                )
                continue
            copies = table.copies_of(key)
            if len(copies) != value:
                problems.append(
                    f"slot ({bucket},{slot}): counter {value} but key {key:#x} "
                    f"has {len(copies)} live copies"
                )
            slotmap = table._slotmaps[index]
            if slotmap is None:
                problems.append(f"slot ({bucket},{slot}): missing sibling metadata")
            else:
                actual = [None] * table.d
                for copy_bucket, copy_slot in copies:
                    actual[table._position_of(copy_bucket)] = copy_slot
                if tuple(actual) != slotmap:
                    problems.append(
                        f"slot ({bucket},{slot}): stale sibling metadata "
                        f"{slotmap} != {tuple(actual)}"
                    )
            live_keys[key] = True
    if len(live_keys) != table.main_items:
        problems.append(
            f"main-table count {table.main_items} != {len(live_keys)} live keys"
        )
    if table.stash is not None and table.deletion_mode is DeletionMode.DISABLED:
        for key, _ in table.stash.items():
            for bucket in table._candidates(key):
                word = [
                    table._counters.peek(table._slot_index(bucket, s))
                    for s in range(table.slots)
                ]
                if any(v != 1 for v in word):
                    problems.append(
                        f"stashed key {key:#x}: bucket {bucket} counters {word}"
                    )
                if not table._flags.test(bucket):
                    problems.append(f"stashed key {key:#x}: flag unset at {bucket}")
    if problems:
        raise InvariantViolationError("; ".join(problems))
