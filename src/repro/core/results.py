"""Operation outcome types shared by every table implementation."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Optional


class InsertStatus(Enum):
    """How an insertion ended."""

    STORED = "stored"
    """The item lives in the main table (possibly after kick-outs)."""

    STASHED = "stashed"
    """Collision resolution failed; the item went to the stash."""

    FAILED = "failed"
    """Collision resolution failed and no stash is configured."""

    UPDATED = "updated"
    """An upsert found the key already present and refreshed its value."""


@dataclass(frozen=True)
class InsertOutcome:
    """Result of one ``put``/``upsert`` call."""

    status: InsertStatus
    kicks: int = 0
    copies: int = 0
    collided: bool = False
    """True when every candidate held a sole copy (a "real" collision)."""

    @property
    def stored(self) -> bool:
        return self.status in (InsertStatus.STORED, InsertStatus.UPDATED)

    @property
    def stashed(self) -> bool:
        return self.status is InsertStatus.STASHED

    @property
    def failed(self) -> bool:
        return self.status is InsertStatus.FAILED


@dataclass(frozen=True)
class LookupOutcome:
    """Result of one ``lookup`` call."""

    found: bool
    value: Any = None
    from_stash: bool = False
    checked_stash: bool = False
    buckets_read: int = 0
    retries: int = 0
    """Seqlock validation retries burned before this outcome was accepted
    (only ever non-zero for reads through a concurrent/shared front)."""

    # The generated __init__ of a frozen dataclass routes every field
    # through object.__setattr__ (~1.5us per instance), which dominates the
    # batch kernels' per-key budget.  These hot-path constructors build the
    # two common shapes directly in __dict__; the instances are
    # indistinguishable (eq, hash, repr, immutability) from ones made by
    # __init__.

    @classmethod
    def hit(cls, value: Any, buckets_read: int) -> "LookupOutcome":
        """A main-table hit (the batch kernels' dominant outcome)."""
        self = object.__new__(cls)
        fields = self.__dict__
        fields["found"] = True
        fields["value"] = value
        fields["from_stash"] = False
        fields["checked_stash"] = False
        fields["buckets_read"] = buckets_read
        fields["retries"] = 0
        return self

    @classmethod
    def miss(cls, buckets_read: int) -> "LookupOutcome":
        """A miss that probed ``buckets_read`` buckets (no stash check)."""
        self = object.__new__(cls)
        fields = self.__dict__
        fields["found"] = False
        fields["value"] = None
        fields["from_stash"] = False
        fields["checked_stash"] = False
        fields["buckets_read"] = buckets_read
        fields["retries"] = 0
        return self


@dataclass(frozen=True)
class DeleteOutcome:
    """Result of one ``delete`` call."""

    deleted: bool
    copies_removed: int = 0
    from_stash: bool = False
    checked_stash: bool = False


@dataclass
class TableEvents:
    """Milestones recorded while a table fills up (Table I / Fig. 11).

    ``first_collision_items`` is the distinct-item count at the moment an
    insertion first found every candidate bucket holding a sole copy (the
    paper's "real collision"); ``first_failure_items`` is the count at the
    first insertion that had to stash/fail.
    """

    first_collision_items: Optional[int] = None
    first_failure_items: Optional[int] = None

    def note_collision(self, items: int) -> None:
        if self.first_collision_items is None:
            self.first_collision_items = items

    def note_failure(self, items: int) -> None:
        if self.first_failure_items is None:
            self.first_failure_items = items
