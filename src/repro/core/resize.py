"""Incremental (online) resizing for McCuckoo.

The paper's introduction holds stop-the-world rehashing against classic
cuckoo tables: "reading out all inserted items and using a different set of
hash functions to put them into a bigger table, during which the hash table
is completely unusable".  A stash absorbs transient overload, but a
persistently growing key set eventually needs more buckets.

:class:`ResizableMcCuckoo` keeps the table usable throughout growth.  When
the load ratio crosses ``grow_at``, it allocates a fresh table
``growth_factor`` times bigger and then *migrates a few buckets per
subsequent write operation*:

* new insertions go to the new table;
* lookups/deletes consult the new table first, then the old one;
* each ``put``/``delete`` also advances a migration cursor over the old
  table's buckets, moving ``migrate_batch`` distinct items across;
* when the cursor completes (including draining the old stash), the old
  table is dropped.

Worst-case per-operation work stays bounded, there is no unavailability
window, and the invariant checkers hold on both halves at every step.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

from ..hashing import Key, KeyLike
from ..memory.model import MemoryModel
from .config import DeletionMode, SiblingTracking
from .engine import EngineLike
from .errors import ConfigurationError
from .interface import HashTable
from .mccuckoo import McCuckoo
from .policies import KickPolicy
from .results import DeleteOutcome, InsertOutcome, LookupOutcome


class ResizableMcCuckoo(HashTable):
    """A McCuckoo table that grows online, a few buckets per write."""

    name = "ResizableMcCuckoo"

    def __init__(
        self,
        n_buckets: int,
        d: int = 3,
        grow_at: float = 0.85,
        growth_factor: float = 2.0,
        migrate_batch: int = 8,
        seed: int = 0,
        maxloop: int = 500,
        deletion_mode: DeletionMode = DeletionMode.RESET,
        sibling_tracking: SiblingTracking = SiblingTracking.READ,
        stash_buckets: int = 64,
        mem: Optional[MemoryModel] = None,
        engine: EngineLike = None,
        **table_kwargs: Any,
    ) -> None:
        super().__init__(mem)
        if not 0.0 < grow_at < 1.0:
            raise ConfigurationError("grow_at must be within (0, 1)")
        if growth_factor <= 1.0:
            raise ConfigurationError("growth_factor must exceed 1.0")
        if migrate_batch < 1:
            raise ConfigurationError("migrate_batch must be positive")
        if deletion_mode is DeletionMode.DISABLED:
            raise ConfigurationError(
                "online migration removes items from the old half, so the "
                "deletion mode cannot be DISABLED"
            )
        self.grow_at = grow_at
        self.growth_factor = growth_factor
        self.migrate_batch = migrate_batch
        self._seed = seed
        if isinstance(table_kwargs.get("kick_policy"), KickPolicy):
            raise ConfigurationError(
                "pass kick_policy by registry name (a string): during a "
                "resize the active and retiring generations coexist, and a "
                "shared policy instance cannot be attached to both tables"
            )
        self._table_kwargs = dict(
            d=d,
            maxloop=maxloop,
            deletion_mode=deletion_mode,
            sibling_tracking=sibling_tracking,
            stash_buckets=stash_buckets,
            engine=engine,
            **table_kwargs,
        )
        self._active = self._make_table(n_buckets, seed)
        self._retiring: Optional[McCuckoo] = None
        self._cursor = 0
        self.generations = 0

    def _make_table(self, n_buckets: int, seed: int) -> McCuckoo:
        return McCuckoo(n_buckets, seed=seed, mem=self.mem, **self._table_kwargs)

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        total = self._active.capacity
        if self._retiring is not None:
            total += self._retiring.capacity
        return total

    def __len__(self) -> int:
        total = len(self._active)
        if self._retiring is not None:
            total += len(self._retiring)
        return total

    @property
    def resizing(self) -> bool:
        return self._retiring is not None

    @property
    def active_table(self) -> McCuckoo:
        return self._active

    @property
    def retiring_table(self) -> Optional[McCuckoo]:
        return self._retiring

    # ------------------------------------------------------------------
    # growth machinery
    # ------------------------------------------------------------------

    def _maybe_start_resize(self) -> None:
        if self._retiring is not None:
            return
        if self._active.load_ratio < self.grow_at:
            return
        self.generations += 1
        bigger = max(
            self._active.n_buckets + 1,
            int(self._active.n_buckets * self.growth_factor),
        )
        self._retiring = self._active
        self._active = self._make_table(bigger, self._seed + self.generations)
        self._cursor = 0

    def migrate_step(self, batch: Optional[int] = None) -> int:
        """Move up to ``batch`` distinct items old → new; returns how many.

        Called automatically by every write; callable directly to drain the
        old table faster (e.g. from an idle loop).
        """
        if self._retiring is None:
            return 0
        moved = 0
        budget = batch if batch is not None else self.migrate_batch
        old = self._retiring
        while moved < budget and self._cursor < old.capacity:
            bucket = self._cursor
            self._cursor += 1
            if old._counters.peek(bucket) == 0:
                continue
            key = old._keys[bucket]
            value = old._values[bucket]
            assert key is not None
            old.delete(key)
            # A fresher version may already live in the new half (a put of
            # the same key during migration); never shadow it.
            if not self._active.lookup(key).found:
                self._active.put(key, value)
            moved += 1
        if self._cursor >= old.capacity and self._retiring is not None:
            # main table drained: move any stashed stragglers and finish
            if old.stash is not None:
                for key, value in old.stash.pop_all():
                    if not self._active.lookup(key).found:
                        self._active.put(key, value)
                    moved += 1
            self._retiring = None
        return moved

    def finish_resize(self) -> int:
        """Drain the old table completely; returns items moved."""
        total = 0
        while self._retiring is not None:
            total += self.migrate_step(batch=1024)
        return total

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------

    def put(self, key: KeyLike, value: Any = None) -> InsertOutcome:
        self._maybe_start_resize()
        outcome = self._active.put(key, value)
        self.migrate_step()
        return outcome

    def lookup(self, key: KeyLike) -> LookupOutcome:
        outcome = self._active.lookup(key)
        if outcome.found or self._retiring is None:
            return outcome
        return self._retiring.lookup(key)

    def lookup_many(self, keys: Sequence[KeyLike]) -> List[LookupOutcome]:
        """Batched lookup: active-half kernel, misses retried on the old half.

        put_many/delete_many stay the interface's scalar loops on purpose —
        each write must interleave its own migration step to keep the
        per-operation resize bound.
        """
        outcomes = self._active.lookup_many(keys)
        if self._retiring is not None:
            missed = [i for i, outcome in enumerate(outcomes) if not outcome.found]
            if missed:
                retried = self._retiring.lookup_many([keys[i] for i in missed])
                for i, outcome in zip(missed, retried):
                    outcomes[i] = outcome
        return outcomes

    def lookup_many_u64(self, keys_u64: Any) -> List[LookupOutcome]:
        """:meth:`lookup_many` over an already-canonical ``uint64`` array
        (transport fast path; see :meth:`McCuckoo.lookup_many_u64`)."""
        outcomes = self._active.lookup_many_u64(keys_u64)
        if self._retiring is not None:
            missed = [i for i, outcome in enumerate(outcomes) if not outcome.found]
            if missed:
                retried = self._retiring.lookup_many_u64(keys_u64[missed])
                for i, outcome in zip(missed, retried):
                    outcomes[i] = outcome
        return outcomes

    def delete(self, key: KeyLike) -> DeleteOutcome:
        outcome = self._active.delete(key)
        if not outcome.deleted and self._retiring is not None:
            outcome = self._retiring.delete(key)
        self.migrate_step()
        return outcome

    def try_update(self, key: KeyLike, value: Any) -> Optional[InsertOutcome]:
        outcome = self._active.try_update(key, value)
        if outcome is None and self._retiring is not None:
            outcome = self._retiring.try_update(key, value)
        return outcome

    def items(self) -> Iterator[Tuple[Key, Any]]:
        yield from self._active.items()
        if self._retiring is not None:
            yield from self._retiring.items()

    @property
    def load_ratio(self) -> float:
        # during migration, report pressure on the *active* half: that is
        # what decides whether another growth round is needed
        return self._active.load_ratio

    @property
    def onchip_bytes(self) -> int:
        total = self._active.onchip_bytes
        if self._retiring is not None:
            total += self._retiring.onchip_bytes
        return total
