"""Core McCuckoo implementation: single-slot and blocked multi-copy tables."""

from .batch import BatchResult, batched_lookup, serial_epochs
from .blocked import BlockedMcCuckoo
from .config import DeletionMode, FailurePolicy, SiblingTracking
from .counters import BitArray, PackedArray
from .engine import BACKENDS, EngineConfig
from .errors import (
    ConfigurationError,
    InvariantViolationError,
    ReproError,
    TableFullError,
    UnsupportedOperationError,
)
from .interface import HashTable
from .invariants import check_blocked, check_mccuckoo
from .mccuckoo import McCuckoo
from .multimap import McCuckooMultiMap
from .resize import ResizableMcCuckoo
from .sharded import (ShardedMcCuckoo, ShardRouter, shards_of_worker,
                      worker_of_shard)
from .policies import (
    BubblingPolicy,
    KickPolicy,
    MinCounterPolicy,
    RandomWalkPolicy,
    WearAwarePolicy,
    make_policy,
)
from .snapshot import load as load_snapshot
from .snapshot import save as save_snapshot
from .results import (
    DeleteOutcome,
    InsertOutcome,
    InsertStatus,
    LookupOutcome,
    TableEvents,
)
from .stash import OffChipStash, OnChipStash

__all__ = [
    "BACKENDS",
    "BatchResult",
    "BitArray",
    "BlockedMcCuckoo",
    "BubblingPolicy",
    "ConfigurationError",
    "EngineConfig",
    "DeleteOutcome",
    "DeletionMode",
    "FailurePolicy",
    "HashTable",
    "InsertOutcome",
    "InsertStatus",
    "InvariantViolationError",
    "KickPolicy",
    "LookupOutcome",
    "McCuckoo",
    "McCuckooMultiMap",
    "MinCounterPolicy",
    "WearAwarePolicy",
    "OffChipStash",
    "OnChipStash",
    "PackedArray",
    "RandomWalkPolicy",
    "ResizableMcCuckoo",
    "ShardRouter",
    "shards_of_worker",
    "worker_of_shard",
    "ShardedMcCuckoo",
    "ReproError",
    "SiblingTracking",
    "TableEvents",
    "TableFullError",
    "UnsupportedOperationError",
    "batched_lookup",
    "check_blocked",
    "check_mccuckoo",
    "make_policy",
    "load_snapshot",
    "save_snapshot",
    "serial_epochs",
]
