"""Snapshot and restore table state.

A deduplication index or flow table must survive restarts without a full
rebuild (re-inserting millions of keys would also re-randomise the layout
and invalidate warm counters).  These helpers capture the complete state of
a :class:`McCuckoo` or :class:`BlockedMcCuckoo` — bucket contents, on-chip
counters, flags, tombstones, sibling metadata, stash, RNG state and event
milestones — and restore it bit-for-bit.

Snapshots are plain picklable dicts; :func:`save` / :func:`load` wrap them
in a versioned pickle file.  Restored tables are verified against the
structural invariant checkers before being returned.
"""

from __future__ import annotations

import pickle
from typing import Any, Dict

from .blocked import BlockedMcCuckoo
from .config import DeletionMode, FailurePolicy, SiblingTracking
from .errors import ConfigurationError
from .invariants import check_blocked, check_mccuckoo
from .mccuckoo import McCuckoo
from .results import TableEvents

SNAPSHOT_VERSION = 1


def _stash_state(table) -> Dict[str, Any]:
    if table._stash is None:
        return {"present": False}
    return {
        "present": True,
        "n_buckets": len(table._stash._buckets),
        "items": list(table._stash.items()),
    }


def _restore_stash(table, state: Dict[str, Any]) -> None:
    if not state["present"]:
        return
    stash = table._stash
    for chain in stash._buckets:
        chain.clear()
    stash._count = 0
    for key, value in state["items"]:
        stash._bucket_of(key).append((key, value))
        stash._count += 1


def snapshot_mccuckoo(table: McCuckoo) -> Dict[str, Any]:
    """Capture a single-slot McCuckoo table's full state."""
    return {
        "version": SNAPSHOT_VERSION,
        "kind": "mccuckoo",
        "config": {
            "n_buckets": table.n_buckets,
            "d": table.d,
            "seed": table._seed,
            "maxloop": table.maxloop,
            "on_failure": table.on_failure.value,
            "deletion_mode": table.deletion_mode.value,
            "sibling_tracking": table.sibling_tracking.value,
            "stash_buckets": (
                len(table._stash._buckets) if table._stash is not None else 0
            ),
        },
        "keys": list(table._keys),
        "values": list(table._values),
        "counters": bytes(table._counters._data),
        "flags": bytes(table._flags._data),
        "tombstones": (
            bytes(table._tombstones._data) if table._tombstones is not None else None
        ),
        "masks": list(table._masks) if table._masks is not None else None,
        "n_main": table._n_main,
        "total_kicks": table.total_kicks,
        "rng_state": table._rng.getstate(),
        "events": (
            table.events.first_collision_items,
            table.events.first_failure_items,
        ),
        "stash": _stash_state(table),
    }


def restore_mccuckoo(data: Dict[str, Any], *, mem=None, engine=None) -> McCuckoo:
    """Rebuild a McCuckoo table from :func:`snapshot_mccuckoo` output.

    ``mem`` / ``engine`` optionally attach a live memory model and batch
    engine to the restored table (snapshots never carry either — a counter
    object and a compute backend are runtime wiring, not state).
    """
    if data.get("kind") != "mccuckoo":
        raise ConfigurationError("snapshot is not a single-slot McCuckoo table")
    if data.get("version") != SNAPSHOT_VERSION:
        raise ConfigurationError(f"unsupported snapshot version {data.get('version')}")
    cfg = data["config"]
    table = McCuckoo(
        cfg["n_buckets"],
        d=cfg["d"],
        seed=cfg["seed"],
        maxloop=cfg["maxloop"],
        on_failure=FailurePolicy(cfg["on_failure"]),
        deletion_mode=DeletionMode(cfg["deletion_mode"]),
        sibling_tracking=SiblingTracking(cfg["sibling_tracking"]),
        stash_buckets=max(1, cfg["stash_buckets"]),
        mem=mem,
        engine=engine,
    )
    table._keys = list(data["keys"])
    table._values = list(data["values"])
    table._counters._data = bytearray(data["counters"])
    table._flags._data = bytearray(data["flags"])
    if table._tombstones is not None and data["tombstones"] is not None:
        table._tombstones._data = bytearray(data["tombstones"])
    if table._masks is not None and data["masks"] is not None:
        table._masks = list(data["masks"])
    table._n_main = data["n_main"]
    table.total_kicks = data["total_kicks"]
    table._rng.setstate(data["rng_state"])
    table.events = TableEvents(*data["events"])
    _restore_stash(table, data["stash"])
    check_mccuckoo(table)
    return table


def snapshot_blocked(table: BlockedMcCuckoo) -> Dict[str, Any]:
    """Capture a blocked B-McCuckoo table's full state."""
    return {
        "version": SNAPSHOT_VERSION,
        "kind": "blocked",
        "config": {
            "n_buckets": table.n_buckets,
            "d": table.d,
            "slots": table.slots,
            "seed": table._seed,
            "maxloop": table.maxloop,
            "on_failure": table.on_failure.value,
            "deletion_mode": table.deletion_mode.value,
            "stash_buckets": (
                len(table._stash._buckets) if table._stash is not None else 0
            ),
        },
        "keys": list(table._keys),
        "values": list(table._values),
        "slotmaps": list(table._slotmaps),
        "counters": bytes(table._counters._data),
        "flags": bytes(table._flags._data),
        "tombstones": (
            bytes(table._tombstones._data) if table._tombstones is not None else None
        ),
        "n_main": table._n_main,
        "total_kicks": table.total_kicks,
        "rng_state": table._rng.getstate(),
        "events": (
            table.events.first_collision_items,
            table.events.first_failure_items,
        ),
        "stash": _stash_state(table),
    }


def restore_blocked(data: Dict[str, Any]) -> BlockedMcCuckoo:
    """Rebuild a B-McCuckoo table from :func:`snapshot_blocked` output."""
    if data.get("kind") != "blocked":
        raise ConfigurationError("snapshot is not a blocked B-McCuckoo table")
    if data.get("version") != SNAPSHOT_VERSION:
        raise ConfigurationError(f"unsupported snapshot version {data.get('version')}")
    cfg = data["config"]
    table = BlockedMcCuckoo(
        cfg["n_buckets"],
        d=cfg["d"],
        slots=cfg["slots"],
        seed=cfg["seed"],
        maxloop=cfg["maxloop"],
        on_failure=FailurePolicy(cfg["on_failure"]),
        deletion_mode=DeletionMode(cfg["deletion_mode"]),
        stash_buckets=max(1, cfg["stash_buckets"]),
    )
    table._keys = list(data["keys"])
    table._values = list(data["values"])
    table._slotmaps = list(data["slotmaps"])
    table._counters._data = bytearray(data["counters"])
    table._flags._data = bytearray(data["flags"])
    if table._tombstones is not None and data["tombstones"] is not None:
        table._tombstones._data = bytearray(data["tombstones"])
    table._n_main = data["n_main"]
    table.total_kicks = data["total_kicks"]
    table._rng.setstate(data["rng_state"])
    table.events = TableEvents(*data["events"])
    _restore_stash(table, data["stash"])
    check_blocked(table)
    return table


def snapshot_resizable(table) -> Dict[str, Any]:
    """Capture a :class:`~repro.core.resize.ResizableMcCuckoo`, including an
    in-flight migration (both halves plus the cursor position)."""
    return {
        "version": SNAPSHOT_VERSION,
        "kind": "resizable",
        "config": {
            "grow_at": table.grow_at,
            "growth_factor": table.growth_factor,
            "migrate_batch": table.migrate_batch,
            "seed": table._seed,
        },
        "cursor": table._cursor,
        "generations": table.generations,
        "active": snapshot_mccuckoo(table.active_table),
        "retiring": (
            snapshot_mccuckoo(table.retiring_table)
            if table.retiring_table is not None
            else None
        ),
    }


def restore_resizable(data: Dict[str, Any], *, mem=None, engine=None):
    """Rebuild a ResizableMcCuckoo from :func:`snapshot_resizable` output."""
    from .resize import ResizableMcCuckoo

    if data.get("kind") != "resizable":
        raise ConfigurationError("snapshot is not a ResizableMcCuckoo table")
    if data.get("version") != SNAPSHOT_VERSION:
        raise ConfigurationError(f"unsupported snapshot version {data.get('version')}")
    cfg = data["config"]
    active_cfg = data["active"]["config"]
    table = ResizableMcCuckoo(
        active_cfg["n_buckets"],
        d=active_cfg["d"],
        grow_at=cfg["grow_at"],
        growth_factor=cfg["growth_factor"],
        migrate_batch=cfg["migrate_batch"],
        seed=cfg["seed"],
        maxloop=active_cfg["maxloop"],
        deletion_mode=DeletionMode(active_cfg["deletion_mode"]),
        sibling_tracking=SiblingTracking(active_cfg["sibling_tracking"]),
        stash_buckets=max(1, active_cfg["stash_buckets"]),
        on_failure=FailurePolicy(active_cfg["on_failure"]),
        mem=mem,
        engine=engine,
    )
    table._active = restore_mccuckoo(data["active"], mem=table.mem, engine=engine)
    table._retiring = (
        restore_mccuckoo(data["retiring"], mem=table.mem, engine=engine)
        if data["retiring"] is not None
        else None
    )
    table._cursor = data["cursor"]
    table.generations = data["generations"]
    return table


def save(table, path: str) -> None:
    """Snapshot a table (McCuckoo, BlockedMcCuckoo, or ResizableMcCuckoo)
    to a pickle file."""
    from .resize import ResizableMcCuckoo

    if isinstance(table, McCuckoo):
        data = snapshot_mccuckoo(table)
    elif isinstance(table, BlockedMcCuckoo):
        data = snapshot_blocked(table)
    elif isinstance(table, ResizableMcCuckoo):
        data = snapshot_resizable(table)
    else:
        raise ConfigurationError(
            f"cannot snapshot a {type(table).__name__}; only the multi-copy "
            "tables are supported"
        )
    with open(path, "wb") as handle:
        pickle.dump(data, handle, protocol=pickle.HIGHEST_PROTOCOL)


def load(path: str):
    """Restore a table saved with :func:`save`."""
    with open(path, "rb") as handle:
        data = pickle.load(handle)
    if not isinstance(data, dict) or "kind" not in data:
        raise ConfigurationError("file does not contain a repro snapshot")
    if data["kind"] == "mccuckoo":
        return restore_mccuckoo(data)
    if data["kind"] == "blocked":
        return restore_blocked(data)
    if data["kind"] == "resizable":
        return restore_resizable(data)
    raise ConfigurationError(f"unknown snapshot kind {data['kind']!r}")
