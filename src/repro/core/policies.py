"""Victim-selection policies for collision resolution (kick-outs).

When every candidate bucket holds the sole copy of some item, a cuckoo
scheme must evict one occupant.  The paper uses random-walk for McCuckoo and
mentions MinCounter (5-bit kick-history counters per bucket) as a drop-in
alternative; all policies live behind one interface so that McCuckoo, the
blocked variant and the single-copy baselines can share them, and so
ablation benches can swap them.

============  ==================================================  =========
registry      victim rule                                         on-chip
name                                                              state
============  ==================================================  =========
random-walk   uniform random candidate (the paper's default)      none
mincounter    least-kicked candidate, saturating kick history     8b/bucket
wear-aware    least-written candidate (flash/NVM wear leveling)   WearMeter
bubbling      min-label candidate with give-up threshold          8b/bucket
              (Bubbling-Up / local-search labels; reaches the
              d-ary load threshold, e.g. 0.97+ at d=4)
============  ==================================================  =========

``bubbling`` also implements a ``variant="porat-shalem"`` knob selecting a
simpler label-increment rule from the same algorithm family (arXiv
1104.5400); see :class:`BubblingPolicy`.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Optional, Sequence

from ..memory.model import MemoryModel
from .counters import PackedArray
from .errors import ConfigurationError


class KickPolicy(ABC):
    """Chooses which candidate bucket's occupant to evict.

    Beyond ``choose``, tables drive three optional hooks around their kick
    walks.  The defaults are exact no-ops (``record_eviction`` forwards to
    the legacy ``on_kick``) so stateless policies — and the default
    random-walk path — behave bit-identically with or without them.
    """

    name: str = "policy"

    def attach(self, n_buckets: int, mem: MemoryModel) -> None:
        """Called once by the owning table; policies with state override."""

    @abstractmethod
    def choose(self, candidates: Sequence[int], rng: random.Random) -> int:
        """Pick one global bucket index from ``candidates`` to evict."""

    def on_kick(self, bucket: int) -> None:
        """Notification that the chosen bucket's occupant was evicted."""

    def record_eviction(self, victim: int, others: Sequence[int]) -> None:
        """Richer eviction notification: the displaced-into bucket plus the
        inserted item's *other* candidate buckets (labeled policies derive
        their updates from the alternatives).  Default forwards to
        :meth:`on_kick` so legacy policies keep working unchanged."""
        self.on_kick(victim)

    def exhausted(self, candidates: Sequence[int]) -> bool:
        """Whether the walk should give up *now* instead of kicking on.

        Called before each eviction with the current candidate set.  A
        policy that can prove (or strongly suspect) that no short path to
        a free bucket exists returns ``True`` and the table falls through
        to its failure handling (stash/rehash/fail) without burning the
        rest of ``maxloop``.  Default: never."""
        return False


class RandomWalkPolicy(KickPolicy):
    """Uniform random victim — the paper's default resolution for McCuckoo."""

    name = "random-walk"

    def choose(self, candidates: Sequence[int], rng: random.Random) -> int:
        if not candidates:
            raise ValueError("no candidates to choose a victim from")
        return candidates[rng.randrange(len(candidates))]


class MinCounterPolicy(KickPolicy):
    """MinCounter [17]: evict from the bucket kicked least often so far.

    A saturating 5-bit counter per bucket records its kick history; the
    "coldest" candidate is chosen (ties broken at random) and its counter is
    incremented.  The counters live on-chip, so reads/writes are charged to
    the on-chip tier of the attached :class:`MemoryModel`.
    """

    name = "mincounter"

    def __init__(self, bits: int = 8, saturate_at: int = 31) -> None:
        # The paper specifies 5-bit counters; PackedArray packs byte-aligned
        # widths, so we store 8 bits and saturate at the 5-bit maximum.
        self._history: Optional[PackedArray] = None
        self._bits = bits
        self._saturate_at = saturate_at

    def attach(self, n_buckets: int, mem: MemoryModel) -> None:
        self._history = PackedArray(
            n_buckets, bits=self._bits, mem=mem, label="kick-history"
        )

    def _require_history(self) -> PackedArray:
        if self._history is None:
            raise ConfigurationError("MinCounterPolicy used before attach()")
        return self._history

    def choose(self, candidates: Sequence[int], rng: random.Random) -> int:
        if not candidates:
            raise ValueError("no candidates to choose a victim from")
        history = self._require_history()
        values = [history.get(bucket) for bucket in candidates]
        best = min(values)
        coldest = [b for b, v in zip(candidates, values) if v == best]
        return coldest[rng.randrange(len(coldest))]

    def on_kick(self, bucket: int) -> None:
        history = self._require_history()
        current = history.get(bucket)
        if current < self._saturate_at:
            history.set(bucket, current + 1)


class WearAwarePolicy(KickPolicy):
    """Evict from the candidate bucket with the lowest write wear.

    Eppstein et al. (*Wear Minimization for Cuckoo Hashing*, arXiv
    1404.0286) show that steering placements away from hot cells bounds
    the maximum per-bucket write count — the metric that decides when a
    flash/NVM device dies.  Each kick writes the evicted bucket (the new
    item lands there), so choosing the least-worn candidate levels the
    wear surface; total writes are unchanged, only their distribution.

    The policy reads the owning table's :class:`~repro.memory.wear.WearMeter`
    (the table wires it in via ``attach_wear``; building the table with
    this policy creates a meter automatically).  Ties break at random so
    a cold region is not filled in index order.
    """

    name = "wear-aware"
    wants_wear = True

    def __init__(self) -> None:
        self._wear = None

    def attach_wear(self, meter) -> None:
        """Called by the owning table with its :class:`WearMeter`."""
        self._wear = meter

    def choose(self, candidates: Sequence[int], rng: random.Random) -> int:
        if not candidates:
            raise ValueError("no candidates to choose a victim from")
        if self._wear is None:
            raise ConfigurationError(
                "WearAwarePolicy used before attach_wear(); build the table "
                "with this policy (or a wear_meter) so it gets wired in"
            )
        wear_of = self._wear.wear_of
        values = [wear_of(bucket) for bucket in candidates]
        best = min(values)
        coldest = [b for b, v in zip(candidates, values) if v == best]
        return coldest[rng.randrange(len(coldest))]


class BubblingPolicy(KickPolicy):
    """Bubbling-Up insertion labels (Kuszmaul & Mitzenmacher, arXiv
    2501.02312; label mechanics per Khosla's local search allocation).

    Each bucket carries a small on-chip label ``l(b)`` — a lower bound on
    the length of the shortest eviction path from ``b`` to a free bucket.
    Free buckets implicitly have label 0 (labels are only raised when a
    bucket is written into by an eviction, and the table only evicts when
    *no* candidate is free).  The walk always kicks the candidate with the
    smallest label (first-lowest on ties — measured better than random
    tie-breaking near the threshold), i.e. it "bubbles" items toward the
    emptiest region of the table, and after displacing into ``victim`` it
    restores the invariant with::

        l(victim) = max(l(victim), 1 + min(l(c) for c in others))

    where ``others`` are the displaced item's remaining candidates; since
    an eviction implies all of them are full, their label-0 entries are
    also raised to 1 (distance >= 1 is certain for a full bucket).

    Because labels are shortest-path lower bounds,
    insertions stay cheap essentially up to the d-ary load threshold
    (~0.9768 for d=4) where random-walk chains explode around ~0.93.  When
    every candidate's label reaches ``give_up_at`` the policy reports
    :meth:`exhausted` and the table stops the walk early — this is the
    paper's threshold schedule collapsed to its final rung, and it bounds
    the worst-case insert cost instead of burning ``maxloop`` kicks on a
    hopeless region.

    ``variant="porat-shalem"`` selects the simpler rule from Porat &
    Shalem (arXiv 1104.5400): the victim's own label is bumped by one
    (self-increment rather than neighborhood minimum) and ties break
    deterministically in candidate order.  It is a documented
    approximation from the same algorithm family, kept as an ablation
    knob; the default ``kuszmaul`` rule dominates it at high load.

    Labels live in a :class:`PackedArray` charged to the on-chip tier,
    8 bits per bucket (the give-up threshold is far below 255).  ``attach``
    is re-called on rehash/resize and rebuilds the labels from scratch —
    stale labels are only a heuristic loss, never a correctness issue.
    """

    name = "bubbling"
    VARIANTS = ("kuszmaul", "porat-shalem")

    def __init__(
        self,
        variant: str = "kuszmaul",
        give_up_at: Optional[int] = None,
        bits: int = 8,
    ) -> None:
        if variant not in self.VARIANTS:
            raise ConfigurationError(
                f"unknown bubbling variant {variant!r}; options: {self.VARIANTS}"
            )
        if give_up_at is not None and give_up_at < 1:
            raise ConfigurationError("give_up_at must be >= 1")
        self.variant = variant
        self._give_up_at_config = give_up_at
        self._bits = bits
        self._labels: Optional[PackedArray] = None
        self._give_up_at = 0
        self._max_label = (1 << bits) - 1

    @property
    def give_up_at(self) -> int:
        """Effective give-up threshold (derived at attach when not set)."""
        return self._give_up_at

    def attach(self, n_buckets: int, mem: MemoryModel) -> None:
        self._labels = PackedArray(
            n_buckets, bits=self._bits, mem=mem, label="bubble-label"
        )
        if self._give_up_at_config is not None:
            self._give_up_at = self._give_up_at_config
        else:
            # Shortest augmenting paths are O(log n) whp below the load
            # threshold; past ~2*log2(n) the walk is almost surely stuck.
            self._give_up_at = max(4, 2 * max(1, n_buckets.bit_length()))
        self._give_up_at = min(self._give_up_at, self._max_label)

    def _require_labels(self) -> PackedArray:
        if self._labels is None:
            raise ConfigurationError("BubblingPolicy used before attach()")
        return self._labels

    def choose(self, candidates: Sequence[int], rng: random.Random) -> int:
        if not candidates:
            raise ValueError("no candidates to choose a victim from")
        labels = self._require_labels()
        values = [labels.get(bucket) for bucket in candidates]
        # Deterministic first-lowest tie-break.  Measured at d=4 near the
        # load threshold this beats random tie-breaking by ~0.5-1.5 points
        # of first-failure fill: a fixed drift direction drains one hash
        # class before disturbing the next, where random ties re-randomize
        # the walk back toward plain random-walk behaviour.
        return candidates[values.index(min(values))]

    def record_eviction(self, victim: int, others: Sequence[int]) -> None:
        labels = self._require_labels()
        if self.variant == "porat-shalem":
            labels.set(victim, min(labels.get(victim) + 1, self._max_label))
            return
        # The table only evicts when every candidate of the displaced-into
        # item is full, so each bucket in ``others`` provably sits at
        # distance >= 1 from a free bucket: raising its label-0 entries to 1
        # is sound and propagates distance information a full step faster
        # than updating the victim alone.  Labels never decrease (the max
        # keeps the tighter of two valid lower bounds).
        floor: Optional[int] = None
        for bucket in others:
            lb = labels.get(bucket)
            if lb == 0:
                labels.set(bucket, 1)
                lb = 1
            floor = lb if floor is None else min(floor, lb)
        new = max(labels.get(victim), (floor or 0) + 1)
        labels.set(victim, min(new, self._max_label))

    def exhausted(self, candidates: Sequence[int]) -> bool:
        if not candidates:
            return False
        labels = self._require_labels()
        return min(labels.get(b) for b in candidates) >= self._give_up_at


POLICIES = {
    RandomWalkPolicy.name: RandomWalkPolicy,
    MinCounterPolicy.name: MinCounterPolicy,
    WearAwarePolicy.name: WearAwarePolicy,
    BubblingPolicy.name: BubblingPolicy,
}


def make_policy(name: str) -> KickPolicy:
    """Instantiate a policy by its registry name."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown kick policy {name!r}; options: {sorted(POLICIES)}"
        ) from None
