"""Victim-selection policies for collision resolution (kick-outs).

When every candidate bucket holds the sole copy of some item, a cuckoo
scheme must evict one occupant.  The paper uses random-walk for McCuckoo and
mentions MinCounter (5-bit kick-history counters per bucket) as a drop-in
alternative; both are provided here behind one interface so that McCuckoo
and the baselines can share them, and so ablation benches can swap them.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Optional, Sequence

from ..memory.model import MemoryModel
from .counters import PackedArray
from .errors import ConfigurationError


class KickPolicy(ABC):
    """Chooses which candidate bucket's occupant to evict."""

    name: str = "policy"

    def attach(self, n_buckets: int, mem: MemoryModel) -> None:
        """Called once by the owning table; policies with state override."""

    @abstractmethod
    def choose(self, candidates: Sequence[int], rng: random.Random) -> int:
        """Pick one global bucket index from ``candidates`` to evict."""

    def on_kick(self, bucket: int) -> None:
        """Notification that the chosen bucket's occupant was evicted."""


class RandomWalkPolicy(KickPolicy):
    """Uniform random victim — the paper's default resolution for McCuckoo."""

    name = "random-walk"

    def choose(self, candidates: Sequence[int], rng: random.Random) -> int:
        if not candidates:
            raise ValueError("no candidates to choose a victim from")
        return candidates[rng.randrange(len(candidates))]


class MinCounterPolicy(KickPolicy):
    """MinCounter [17]: evict from the bucket kicked least often so far.

    A saturating 5-bit counter per bucket records its kick history; the
    "coldest" candidate is chosen (ties broken at random) and its counter is
    incremented.  The counters live on-chip, so reads/writes are charged to
    the on-chip tier of the attached :class:`MemoryModel`.
    """

    name = "mincounter"

    def __init__(self, bits: int = 8, saturate_at: int = 31) -> None:
        # The paper specifies 5-bit counters; PackedArray packs byte-aligned
        # widths, so we store 8 bits and saturate at the 5-bit maximum.
        self._history: Optional[PackedArray] = None
        self._bits = bits
        self._saturate_at = saturate_at

    def attach(self, n_buckets: int, mem: MemoryModel) -> None:
        self._history = PackedArray(
            n_buckets, bits=self._bits, mem=mem, label="kick-history"
        )

    def _require_history(self) -> PackedArray:
        if self._history is None:
            raise ConfigurationError("MinCounterPolicy used before attach()")
        return self._history

    def choose(self, candidates: Sequence[int], rng: random.Random) -> int:
        if not candidates:
            raise ValueError("no candidates to choose a victim from")
        history = self._require_history()
        values = [history.get(bucket) for bucket in candidates]
        best = min(values)
        coldest = [b for b, v in zip(candidates, values) if v == best]
        return coldest[rng.randrange(len(coldest))]

    def on_kick(self, bucket: int) -> None:
        history = self._require_history()
        current = history.get(bucket)
        if current < self._saturate_at:
            history.set(bucket, current + 1)


class WearAwarePolicy(KickPolicy):
    """Evict from the candidate bucket with the lowest write wear.

    Eppstein et al. (*Wear Minimization for Cuckoo Hashing*, arXiv
    1404.0286) show that steering placements away from hot cells bounds
    the maximum per-bucket write count — the metric that decides when a
    flash/NVM device dies.  Each kick writes the evicted bucket (the new
    item lands there), so choosing the least-worn candidate levels the
    wear surface; total writes are unchanged, only their distribution.

    The policy reads the owning table's :class:`~repro.memory.wear.WearMeter`
    (the table wires it in via ``attach_wear``; building the table with
    this policy creates a meter automatically).  Ties break at random so
    a cold region is not filled in index order.
    """

    name = "wear-aware"
    wants_wear = True

    def __init__(self) -> None:
        self._wear = None

    def attach_wear(self, meter) -> None:
        """Called by the owning table with its :class:`WearMeter`."""
        self._wear = meter

    def choose(self, candidates: Sequence[int], rng: random.Random) -> int:
        if not candidates:
            raise ValueError("no candidates to choose a victim from")
        if self._wear is None:
            raise ConfigurationError(
                "WearAwarePolicy used before attach_wear(); build the table "
                "with this policy (or a wear_meter) so it gets wired in"
            )
        wear_of = self._wear.wear_of
        values = [wear_of(bucket) for bucket in candidates]
        best = min(values)
        coldest = [b for b, v in zip(candidates, values) if v == best]
        return coldest[rng.randrange(len(coldest))]


POLICIES = {
    RandomWalkPolicy.name: RandomWalkPolicy,
    MinCounterPolicy.name: MinCounterPolicy,
    WearAwarePolicy.name: WearAwarePolicy,
}


def make_policy(name: str) -> KickPolicy:
    """Instantiate a policy by its registry name."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown kick policy {name!r}; options: {sorted(POLICIES)}"
        ) from None
