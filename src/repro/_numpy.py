"""Optional NumPy import, shared by the vectorized execution engine.

NumPy is an optional extra (``pip install repro[fast]``): every kernel in
this library has a pure-Python implementation, and the array-backed paths
are selected explicitly through :class:`repro.core.engine.EngineConfig`.
This module is the single place that decides whether NumPy exists, so the
import attempt (and its cost) happens at most once per process.
"""

from __future__ import annotations

from typing import Any, Optional

_NUMPY: Optional[Any] = None
_PROBED = False


def numpy_or_none() -> Optional[Any]:
    """The ``numpy`` module if importable, else ``None`` (cached)."""
    global _NUMPY, _PROBED
    if not _PROBED:
        _PROBED = True
        try:
            import numpy
        except ImportError:
            _NUMPY = None
        else:
            _NUMPY = numpy
    return _NUMPY


def numpy_available() -> bool:
    return numpy_or_none() is not None


def _reset_probe_for_tests() -> None:
    """Forget the cached probe result (test hook only)."""
    global _NUMPY, _PROBED
    _NUMPY = None
    _PROBED = False
