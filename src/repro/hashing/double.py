"""Double hashing: derive all d functions from two base hashes.

Mitzenmacher, Panagiotou & Walzer (SWAT 2018, the paper's [21]) show that
cuckoo hashing loses nothing when the d hash functions are generated as
``h_i(x) = h1(x) + i * h2(x)``: the load thresholds are unchanged while the
scheme computes only two real hashes per key.  This family implements that
construction over SplitMix64 bases, letting experiments check that the
McCuckoo shapes are insensitive to it.
"""

from __future__ import annotations

from typing import Any, List, Sequence

from .._numpy import numpy_or_none
from .family import MASK64, HashFamily, HashFunction, Key
from .splitmix import SplitMixHash, splitmix64, splitmix64_array


class DoubleHash(HashFunction):
    """``h1 + index * h2`` over two shared base functions.

    ``h2`` is forced odd so that for power-of-two table sizes the stride is
    invertible and distinct indices give distinct functions.
    """

    __slots__ = ("index", "_h1", "_h2")

    def __init__(self, index: int, h1: SplitMixHash, h2: SplitMixHash) -> None:
        if index < 0:
            raise ValueError("index must be non-negative")
        self.index = index
        self._h1 = h1
        self._h2 = h2

    def hash64(self, key: Key) -> int:
        stride = self._h2.hash64(key) | 1
        return (self._h1.hash64(key) + self.index * stride) & MASK64


class DoubleHashFamily(HashFamily):
    """Family where every member shares the same two base hashes."""

    name = "double"

    def make(self, index: int, seed: int) -> DoubleHash:
        base = splitmix64(seed ^ 0xD0B1E)
        h1 = SplitMixHash(base)
        h2 = SplitMixHash(splitmix64(base))
        return DoubleHash(index, h1, h2)

    def candidates(
        self, functions: Sequence[HashFunction], key: Key, n_buckets: int
    ) -> List[int]:
        """Two digests give all d indices: ``(h1 + i*h2) mod n`` per member."""
        first = functions[0]
        assert isinstance(first, DoubleHash)
        h1 = first._h1.hash64(key)
        stride = first._h2.hash64(key) | 1
        return [
            ((h1 + fn.index * stride) & MASK64) % n_buckets  # type: ignore[attr-defined]
            for fn in functions
        ]

    def candidates_matrix(
        self, functions: Sequence[HashFunction], keys: Any, n_buckets: int
    ) -> Any:
        """Array kernel: two SplitMix passes over the key array, then one
        wrapping multiply-add per sub-table (``uint64`` overflow is the
        scalar path's ``& MASK64``)."""
        np = numpy_or_none()
        if np is None:  # pragma: no cover - callers gate on the engine
            raise RuntimeError("candidates_matrix requires numpy")
        first = functions[0]
        assert isinstance(first, DoubleHash)
        h1 = splitmix64_array(keys ^ np.uint64(first._h1.seed))
        stride = splitmix64_array(keys ^ np.uint64(first._h2.seed)) | np.uint64(1)
        n = np.uint64(n_buckets)
        out = np.empty((int(keys.size), len(functions)), dtype=np.int64)
        for column, fn in enumerate(functions):
            mixed = h1 + np.uint64(fn.index) * stride  # type: ignore[attr-defined]
            out[:, column] = (mixed % n).astype(np.int64)
        return out
