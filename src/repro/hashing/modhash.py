"""Modulo/bit-operation hash — the paper's FPGA implementation.

For the FPGA evaluation the paper replaces BOB hash with "a much simpler
hash implementation that only involves modulo and bit operations".  This
module reproduces that flavour: a per-function odd multiplier, a rotate, and
a xor-fold, all of which synthesize to trivial hardware.  Quality is lower
than the other families, which is exactly why it is worth benchmarking — the
latency experiments in the paper run on it.
"""

from __future__ import annotations

from .family import MASK64, HashFamily, HashFunction, Key

_ODD_MULTIPLIERS = (
    0x9E3779B97F4A7C15,
    0xC2B2AE3D27D4EB4F,
    0x165667B19E3779F9,
    0xD6E8FEB86659FD93,
    0xA0761D6478BD642F,
)


def _rotl(x: int, r: int) -> int:
    r %= 64
    return ((x << r) | (x >> (64 - r))) & MASK64


class ModHash(HashFunction):
    """Multiply + rotate + fold, indexable directly in hardware."""

    __slots__ = ("multiplier", "rotation")

    def __init__(self, multiplier: int, rotation: int) -> None:
        if multiplier % 2 == 0:
            raise ValueError("multiplier must be odd for a bijective multiply")
        self.multiplier = multiplier & MASK64
        self.rotation = rotation % 64

    def hash64(self, key: Key) -> int:
        x = (key * self.multiplier) & MASK64
        x = _rotl(x, self.rotation)
        return x ^ (x >> 29)


class ModFamily(HashFamily):
    """Family of hardware-style modulo/bit hashes."""

    name = "mod"

    def make(self, index: int, seed: int) -> ModHash:
        multiplier = _ODD_MULTIPLIERS[index % len(_ODD_MULTIPLIERS)]
        multiplier = (multiplier ^ (seed << 1)) | 1
        return ModHash(multiplier & MASK64, rotation=17 + 11 * index)
