"""Simple tabulation hashing.

Tabulation hashing is 3-independent and known to make cuckoo hashing behave
as if fully random (Pătraşcu & Thorup), which makes it a useful third family
for checking that experiment shapes are not artifacts of one hash choice.
The key's 8 bytes index 8 tables of 256 random 64-bit words that are XORed
together.
"""

from __future__ import annotations

import random
from typing import List

from .family import MASK64, HashFamily, HashFunction, Key


class TabulationHash(HashFunction):
    """8x256-entry tabulation hash seeded deterministically."""

    __slots__ = ("_tables",)

    def __init__(self, seed: int) -> None:
        rng = random.Random(seed)
        self._tables: List[List[int]] = [
            [rng.getrandbits(64) for _ in range(256)] for _ in range(8)
        ]

    def hash64(self, key: Key) -> int:
        key &= MASK64
        result = 0
        for byte_index in range(8):
            result ^= self._tables[byte_index][(key >> (8 * byte_index)) & 0xFF]
        return result


class TabulationFamily(HashFamily):
    """Family of independent tabulation hashes."""

    name = "tabulation"

    def make(self, index: int, seed: int) -> TabulationHash:
        return TabulationHash((seed << 8) ^ (index * 0x1F1F1F1F) ^ 0xABCDEF)
