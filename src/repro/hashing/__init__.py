"""Hash function families for cuckoo tables.

The default family is :class:`SplitMixFamily`; the paper's software hash is
:class:`BobFamily` and its FPGA hash is :class:`ModFamily`.
"""

from .bob import BobFamily, BobHash, bobhash
from .double import DoubleHash, DoubleHashFamily
from .family import (
    MASK64,
    HashFamily,
    HashFunction,
    Key,
    KeyLike,
    candidate_buckets,
    canonical_key,
)
from .modhash import ModFamily, ModHash
from .splitmix import SplitMixFamily, SplitMixHash, splitmix64, splitmix64_array
from .tabulation import TabulationFamily, TabulationHash

DEFAULT_FAMILY = SplitMixFamily()

FAMILIES = {
    family.name: family
    for family in (
        SplitMixFamily(),
        BobFamily(),
        TabulationFamily(),
        ModFamily(),
        DoubleHashFamily(),
    )
}

__all__ = [
    "BobFamily",
    "BobHash",
    "DoubleHash",
    "DoubleHashFamily",
    "DEFAULT_FAMILY",
    "FAMILIES",
    "HashFamily",
    "HashFunction",
    "Key",
    "KeyLike",
    "MASK64",
    "ModFamily",
    "ModHash",
    "SplitMixFamily",
    "SplitMixHash",
    "TabulationFamily",
    "TabulationHash",
    "bobhash",
    "candidate_buckets",
    "canonical_key",
    "splitmix64",
    "splitmix64_array",
]
