"""Seeded hash families used to derive the d candidate buckets.

Cuckoo hashing needs ``d`` independent hash functions ``h_1..h_d`` mapping a
key to a bucket index in each sub-table.  A :class:`HashFamily` produces the
``d`` functions from a seed; every table in this library takes a family so
experiments can swap hash implementations without touching table code.

Keys are 64-bit integers throughout the library (the DocWords workload packs
DocID and WordID into one).  :func:`canonical_key` converts ints, bytes and
strings into that canonical form.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from hashlib import blake2b
from typing import Any, List, Sequence, Union

from .._numpy import numpy_or_none

MASK64 = (1 << 64) - 1

Key = int
KeyLike = Union[int, bytes, str]


def canonical_key(key: KeyLike) -> Key:
    """Map an int/bytes/str key to the canonical unsigned 64-bit integer.

    Ints are reduced mod 2^64; bytes and strings are digested with an
    8-byte BLAKE2b, which is stable across processes (unlike built-in
    ``hash``) and runs in C regardless of key length — this function sits
    on every operation's hot path.
    """
    if type(key) is int:  # exact type: the hot path, and excludes bool
        return key & MASK64
    if isinstance(key, bool):
        raise TypeError("bool is not a valid key type")
    if isinstance(key, int):
        return key & MASK64
    if isinstance(key, str):
        key = key.encode("utf-8")
    if isinstance(key, bytes):
        return int.from_bytes(blake2b(key, digest_size=8).digest(), "little")
    raise TypeError(f"unsupported key type: {type(key).__name__}")


class HashFunction(ABC):
    """One seeded hash function mapping a 64-bit key to a 64-bit value."""

    @abstractmethod
    def hash64(self, key: Key) -> int:
        """Return a 64-bit hash of ``key``."""

    def bucket(self, key: Key, n_buckets: int) -> int:
        """Reduce the 64-bit hash to a bucket index in ``[0, n_buckets)``.

        ``n_buckets`` must be positive; tables validate it once at
        construction so this per-operation path carries no check.
        """
        return self.hash64(key) % n_buckets


class HashFamily(ABC):
    """Factory for ``d`` independent hash functions."""

    name: str = "family"

    @abstractmethod
    def make(self, index: int, seed: int) -> HashFunction:
        """Build the ``index``-th function for a family seeded with ``seed``."""

    def functions(self, d: int, seed: int) -> List[HashFunction]:
        """The full list of ``d`` functions for one table instance."""
        if d <= 0:
            raise ValueError("d must be positive")
        return [self.make(i, seed) for i in range(d)]

    def candidates(
        self, functions: Sequence[HashFunction], key: Key, n_buckets: int
    ) -> List[int]:
        """All d candidate bucket indices of ``key`` in one call.

        Semantically identical to ``[fn.bucket(key, n_buckets) for fn in
        functions]``; families whose members share base hashes override this
        to digest the key fewer times (double hashing needs two digests for
        any d).  ``functions`` must be a list this family built.
        """
        return [fn.hash64(key) % n_buckets for fn in functions]

    def candidates_many(
        self, functions: Sequence[HashFunction], keys: Sequence[Key], n_buckets: int
    ) -> List[List[int]]:
        """:meth:`candidates` for a whole batch of canonical keys.

        Families override this to hoist per-key call overhead out of the
        batched kernels' hottest loop.
        """
        return [self.candidates(functions, key, n_buckets) for key in keys]

    def candidates_matrix(
        self, functions: Sequence[HashFunction], keys: Any, n_buckets: int
    ) -> Any:
        """Candidate buckets for a ``uint64`` NumPy key array, as a
        ``(len(keys), d)`` ``int64`` matrix.

        Row ``i`` equals ``candidates(functions, int(keys[i]), n_buckets)``
        — the vectorized engine relies on that equivalence.  This base
        implementation is the *loop fallback* (families without a closed
        arithmetic form, e.g. tabulation and BOB, keep it): it round-trips
        through :meth:`candidates_many` and only pays NumPy conversion at
        the edges.  SplitMix64 and double hashing override it with true
        array kernels.
        """
        np = numpy_or_none()
        if np is None:  # pragma: no cover - callers gate on the engine
            raise RuntimeError("candidates_matrix requires numpy")
        rows = self.candidates_many(functions, keys.tolist(), n_buckets)
        return np.array(rows, dtype=np.int64).reshape(len(rows), len(functions))


def candidate_buckets(
    functions: Sequence[HashFunction], key: Key, n_buckets: int
) -> List[int]:
    """Candidate bucket index per sub-table for ``key``."""
    return [fn.bucket(key, n_buckets) for fn in functions]
