"""BOB hash (Bob Jenkins' lookup2) — the hash the paper's software uses.

This is a faithful pure-Python port of the classic ``lookup2`` mixing
routine from Bob Jenkins' hash page (the "BOB Hash" the paper cites).  The
key is serialised to its 8 little-endian bytes before hashing, matching how
a C implementation would consume a 64-bit key.
"""

from __future__ import annotations

from .family import HashFamily, HashFunction, Key

_MASK32 = (1 << 32) - 1


def _mix(a: int, b: int, c: int) -> tuple:
    """The lookup2 96-bit mix, on 32-bit lanes."""
    a = (a - b - c) & _MASK32
    a ^= c >> 13
    b = (b - c - a) & _MASK32
    b ^= (a << 8) & _MASK32
    c = (c - a - b) & _MASK32
    c ^= b >> 13
    a = (a - b - c) & _MASK32
    a ^= c >> 12
    b = (b - c - a) & _MASK32
    b ^= (a << 16) & _MASK32
    c = (c - a - b) & _MASK32
    c ^= b >> 5
    a = (a - b - c) & _MASK32
    a ^= c >> 3
    b = (b - c - a) & _MASK32
    b ^= (a << 10) & _MASK32
    c = (c - a - b) & _MASK32
    c ^= b >> 15
    return a, b, c


def bobhash(data: bytes, seed: int = 0) -> int:
    """Jenkins lookup2 over ``data`` with a 32-bit ``seed``; returns 32 bits."""
    a = b = 0x9E3779B9
    c = seed & _MASK32
    length = len(data)
    pos = 0
    remaining = length
    while remaining >= 12:
        a = (a + int.from_bytes(data[pos : pos + 4], "little")) & _MASK32
        b = (b + int.from_bytes(data[pos + 4 : pos + 8], "little")) & _MASK32
        c = (c + int.from_bytes(data[pos + 8 : pos + 12], "little")) & _MASK32
        a, b, c = _mix(a, b, c)
        pos += 12
        remaining -= 12
    c = (c + length) & _MASK32
    tail = data[pos:]
    if len(tail) >= 1:
        a = (a + int.from_bytes(tail[:4].ljust(4, b"\0"), "little")) & _MASK32
    if len(tail) >= 5:
        b = (b + int.from_bytes(tail[4:8].ljust(4, b"\0"), "little")) & _MASK32
    if len(tail) >= 9:
        # The final block's last lane is shifted left by one byte in lookup2
        # because the low byte of c is reserved for the length.
        c = (c + (int.from_bytes(tail[8:11].ljust(3, b"\0"), "little") << 8)) & _MASK32
    a, b, c = _mix(a, b, c)
    return c


class BobHash(HashFunction):
    """A seeded BOB hash over the key's 8-byte little-endian encoding.

    Two independent 32-bit lookup2 passes (seed and seed+1) are concatenated
    to produce the 64-bit output expected by :class:`HashFunction`.
    """

    __slots__ = ("seed",)

    def __init__(self, seed: int) -> None:
        self.seed = seed & _MASK32

    def hash64(self, key: Key) -> int:
        data = (key & ((1 << 64) - 1)).to_bytes(8, "little")
        low = bobhash(data, self.seed)
        high = bobhash(data, (self.seed + 1) & _MASK32)
        return (high << 32) | low


class BobFamily(HashFamily):
    """Family of BOB hashes with well-separated seeds."""

    name = "bob"

    def make(self, index: int, seed: int) -> BobHash:
        return BobHash((seed * 0x85EBCA6B + index * 0xC2B2AE35 + 1) & _MASK32)
