"""SplitMix64-style multiply-xorshift hashing — the library default.

The paper's software experiments use BOB hash; any uniform 64-bit hash gives
the same table behaviour, and SplitMix64's finalizer is the fastest
high-quality option in pure Python, so it is the default family for
experiments.  (BOB hash itself is in :mod:`repro.hashing.bob` and is used by
the hash-quality tests and available to every table.)
"""

from __future__ import annotations

from typing import Any, List, Sequence

from .._numpy import numpy_or_none
from .family import MASK64, HashFamily, HashFunction, Key

_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def splitmix64(x: int) -> int:
    """One round of the SplitMix64 output function."""
    x = (x + _GOLDEN) & MASK64
    x = ((x ^ (x >> 30)) * _MIX1) & MASK64
    x = ((x ^ (x >> 27)) * _MIX2) & MASK64
    return x ^ (x >> 31)


def splitmix64_array(x: Any) -> Any:
    """:func:`splitmix64` over a ``uint64`` NumPy array.

    ``uint64`` arithmetic wraps modulo 2^64, which *is* the scalar
    version's ``& MASK64``, so the two agree bit-for-bit on every input.
    """
    np = numpy_or_none()
    if np is None:  # pragma: no cover - callers gate on the engine
        raise RuntimeError("splitmix64_array requires numpy")
    x = x + np.uint64(_GOLDEN)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(_MIX1)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(_MIX2)
    return x ^ (x >> np.uint64(31))


class SplitMixHash(HashFunction):
    """A single SplitMix64-derived hash function with a 64-bit seed."""

    __slots__ = ("seed",)

    def __init__(self, seed: int) -> None:
        self.seed = seed & MASK64

    def hash64(self, key: Key) -> int:
        return splitmix64(key ^ self.seed)


class SplitMixFamily(HashFamily):
    """Derives per-function seeds by walking SplitMix64 from the family seed."""

    name = "splitmix"

    def make(self, index: int, seed: int) -> SplitMixHash:
        derived = seed & MASK64
        for _ in range(index + 1):
            derived = splitmix64(derived + _GOLDEN)
        return SplitMixHash(derived)

    def candidates(
        self, functions: Sequence[HashFunction], key: Key, n_buckets: int
    ) -> List[int]:
        """The default family sits on every operation's hot path, so the
        finalizer is inlined here: one loop body per function instead of
        two calls (``hash64`` → ``splitmix64``) each."""
        out: List[int] = []
        for fn in functions:
            x = (key ^ fn.seed) + _GOLDEN & MASK64  # type: ignore[attr-defined]
            x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
            x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & MASK64
            out.append((x ^ (x >> 31)) % n_buckets)
        return out

    def candidates_many(
        self, functions: Sequence[HashFunction], keys: Sequence[Key], n_buckets: int
    ) -> List[List[int]]:
        seeds = [fn.seed for fn in functions]  # type: ignore[attr-defined]
        out: List[List[int]] = []
        append = out.append
        for key in keys:
            row: List[int] = []
            for seed in seeds:
                x = (key ^ seed) + _GOLDEN & MASK64
                x = ((x ^ (x >> 30)) * _MIX1) & MASK64
                x = ((x ^ (x >> 27)) * _MIX2) & MASK64
                row.append((x ^ (x >> 31)) % n_buckets)
            append(row)
        return out

    def candidates_matrix(
        self, functions: Sequence[HashFunction], keys: Any, n_buckets: int
    ) -> Any:
        """True array kernel: one finalizer pass per sub-table over the
        whole key array, no per-key Python at all."""
        np = numpy_or_none()
        if np is None:  # pragma: no cover - callers gate on the engine
            raise RuntimeError("candidates_matrix requires numpy")
        n = np.uint64(n_buckets)
        out = np.empty((int(keys.size), len(functions)), dtype=np.int64)
        for column, fn in enumerate(functions):
            digest = splitmix64_array(keys ^ np.uint64(fn.seed))  # type: ignore[attr-defined]
            out[:, column] = (digest % n).astype(np.int64)
        return out
