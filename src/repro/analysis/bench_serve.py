"""Serve-layer throughput harness: a worker-count sweep over the TCP path.

Where :mod:`~repro.analysis.bench_core` times the in-process batched
kernels, this module measures the serving stack end to end: it boots a
server per sweep point — the single-process
:class:`~repro.serve.server.McCuckooServer` for ``workers == 0``, the
multi-process :class:`~repro.serve.workers.WorkerServer` for
``workers >= 1`` — and drives the closed-loop load generator at it over
real TCP, reporting ops/sec and latency percentiles per worker count.
``repro bench-serve`` and ``benchmarks/bench_serve_workers.py`` are thin
wrappers; the emitted ``BENCH_serve.json`` is the serve-layer
perf-regression baseline committed under ``benchmarks/results/``.

Methodology notes:

* Throughput is best-of-``repeats`` (maximum ops/sec over fresh
  server+loadgen runs) to suppress scheduler noise; the latency columns
  come from the best run.
* Every sweep point uses the same workload, key set, concurrency, and
  batch size, so the only variable is the execution topology.
* Worker scaling needs cores: the report records ``cpus`` so readers
  (and CI gates) can judge whether a flat curve means an overhead
  problem or just a one-core box.  The paper-level claim — shard
  parallelism scales because shards share nothing (§III.H lifted to
  processes) — is only observable with ``cpus >= workers``.
"""

from __future__ import annotations

import asyncio
import json
import os
import platform
import sys
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..serve.loadgen import LoadgenConfig, LoadReport, run_loadgen
from ..serve.server import McCuckooServer, ServerConfig
from ..serve.workers import WorkerServer


@dataclass(frozen=True)
class BenchServeConfig:
    """Shape of one :func:`run_bench_serve` sweep."""

    workers: Tuple[int, ...] = (0, 1, 2, 4)
    """Sweep points; 0 is the single-process server baseline."""
    n_ops: int = 20_000
    n_keys: int = 2_000
    concurrency: int = 8
    batch_size: int = 32
    value_size: int = 64
    n_shards: int = 8
    workload: str = "zipf"
    seed: int = 0
    repeats: int = 2
    transport: str = "auto"
    """Worker transport for the ``workers >= 1`` sweep points
    ("auto"/"shm"/"socket"); the workers=0 baseline has no workers and
    records transport "none"."""
    read_paths: Tuple[str, ...] = ("ring", "shared")
    """Read paths for the read-mix crossover sweep (run at the largest
    multi-worker point).  The worker-count sweep itself always runs on
    the ring path so its rows stay comparable with older baselines."""
    read_mixes: Tuple[float, ...] = (0.50, 0.95)
    """GET ratios for the crossover sweep (the rest of each mix is
    puts).  0.95 is the headline point: the shared path should beat the
    ring path there by >= 1.5x GET throughput on a multi-core box."""

    @classmethod
    def quick(cls) -> "BenchServeConfig":
        """A seconds-scale variant for CI smoke runs.

        Best-of-2 repeats: at 5k ops a single run's w2/w1 ratio swings
        +/-10% with scheduler noise, which is wider than the w2 >= w1
        transport gate's tolerance.
        """
        return cls(workers=(0, 1, 2), n_ops=5_000, n_keys=512, repeats=2,
                   read_mixes=(0.95,))


async def _run_point(config: BenchServeConfig, n_workers: int,
                     read_path: str = "ring",
                     get_ratio: Optional[float] = None) -> LoadReport:
    server_config = ServerConfig(
        host="127.0.0.1",
        port=0,
        n_shards=config.n_shards,
        expected_items=max(4096, 4 * config.n_keys),
        seed=config.seed,
        transport=config.transport,
        read_path=read_path,
    )
    if n_workers > 0:
        worker_server = WorkerServer(server_config, n_workers=n_workers)
        server: McCuckooServer = worker_server
        transport = worker_server.transport
    else:
        server = McCuckooServer(server_config)
        transport = "none"
    mix = {}
    if get_ratio is not None:
        mix = {"get_ratio": get_ratio, "put_ratio": 1.0 - get_ratio,
               "delete_ratio": 0.0}
    load = LoadgenConfig(
        workload=config.workload,
        n_ops=config.n_ops,
        n_keys=config.n_keys,
        concurrency=config.concurrency,
        batch_size=config.batch_size,
        value_size=config.value_size,
        seed=config.seed,
        **mix,
    )
    async with server:
        host, port = server.address
        return await run_loadgen(host, port, load, transport=transport)


def _measure_point(config: BenchServeConfig, n_workers: int,
                   read_path: str = "ring",
                   get_ratio: Optional[float] = None) -> LoadReport:
    """Best-of-``repeats`` loadgen runs against a fresh server each time."""
    best: Optional[LoadReport] = None
    for _ in range(config.repeats):
        report = asyncio.run(
            _run_point(config, n_workers, read_path, get_ratio)
        )
        if best is None or report.ops_per_sec > best.ops_per_sec:
            best = report
    assert best is not None
    return best


def _get_ops_per_sec(report: LoadReport) -> float:
    """GET-only throughput of a run (completed GETs / wall clock)."""
    count = report.kind_latency.get("get", {}).get("count", 0)
    return count / report.elapsed_s if report.elapsed_s > 0 else 0.0


def run_bench_serve(config: Optional[BenchServeConfig] = None,
                    verbose: bool = False) -> Dict[str, Any]:
    """Run the sweep and return the ``BENCH_serve.json`` document."""
    config = config if config is not None else BenchServeConfig()
    rows: List[Dict[str, Any]] = []
    by_workers: Dict[int, float] = {}
    for n_workers in dict.fromkeys(config.workers):  # dedup, keep order
        start = time.perf_counter()
        report = _measure_point(config, n_workers)
        if verbose:
            label = "single" if n_workers == 0 else f"workers={n_workers}"
            print(f"[{label}: {time.perf_counter() - start:.1f}s, "
                  f"{report.ops_per_sec:,.0f} ops/s]", file=sys.stderr)
        by_workers[n_workers] = report.ops_per_sec
        rows.append({
            "workers": n_workers,
            "transport": report.transport,
            "read_path": "ring" if n_workers > 0 else "none",
            "n_ops": report.n_ops,
            "completed": report.completed,
            "elapsed_s": round(report.elapsed_s, 4),
            "ops_per_sec": round(report.ops_per_sec, 1),
            "p50_ms": round(report.p50_ms, 4),
            "p95_ms": round(report.p95_ms, 4),
            "p99_ms": round(report.p99_ms, 4),
            "mean_ms": round(report.mean_ms, 4),
            "busy": report.busy,
            "timeouts": report.timeouts,
            "errors": report.errors,
        })

    cpus = os.cpu_count() or 1
    headline: Dict[str, Any] = {"cpus": cpus}

    # Read-mix crossover sweep: same multi-worker topology, the read
    # path and GET ratio are the only variables.  Run at the largest
    # multi-worker point so the frontend/worker split actually exists.
    read_rows: List[Dict[str, Any]] = []
    multi_points = [w for w in dict.fromkeys(config.workers) if w >= 1]
    if multi_points and config.read_paths and config.read_mixes:
        rm_workers = max(multi_points)
        get_by_path: Dict[Tuple[str, float], float] = {}
        for get_ratio in config.read_mixes:
            for read_path in dict.fromkeys(config.read_paths):
                start = time.perf_counter()
                report = _measure_point(config, rm_workers, read_path,
                                        get_ratio)
                get_ops = _get_ops_per_sec(report)
                if verbose:
                    print(f"[mix get={get_ratio:.2f} {read_path}: "
                          f"{time.perf_counter() - start:.1f}s, "
                          f"{report.ops_per_sec:,.0f} ops/s, "
                          f"{get_ops:,.0f} get/s]", file=sys.stderr)
                get_by_path[(read_path, get_ratio)] = get_ops
                read_rows.append({
                    "workers": rm_workers,
                    "transport": report.transport,
                    "read_path": read_path,
                    "get_ratio": get_ratio,
                    "completed": report.completed,
                    "elapsed_s": round(report.elapsed_s, 4),
                    "ops_per_sec": round(report.ops_per_sec, 1),
                    "get_ops_per_sec": round(get_ops, 1),
                    "p50_ms": round(report.p50_ms, 4),
                    "p95_ms": round(report.p95_ms, 4),
                    "p99_ms": round(report.p99_ms, 4),
                    "errors": report.errors,
                })
        for get_ratio in config.read_mixes:
            ring = get_by_path.get(("ring", get_ratio), 0.0)
            shared = get_by_path.get(("shared", get_ratio), 0.0)
            if ring > 0 and shared > 0:
                key = f"shared_vs_ring_get_{int(round(get_ratio * 100))}"
                headline[key] = round(shared / ring, 3)
        if cpus < 2 and "shared" in config.read_paths:
            # the >=1.5x claim needs the frontend and the worker on
            # separate cores; on one cpu the shared path only saves a
            # context switch, so the gate would misread starvation as
            # a regression
            headline["read_gate_skipped"] = "cpus<2"
    if 1 in by_workers:
        headline["ops_per_sec_w1"] = round(by_workers[1], 1)
        if 2 in by_workers and by_workers[1] > 0:
            # the transport-overhead gate: holds on any box, because two
            # workers should at worst tie one when there are no spare cores
            headline["w2_vs_w1"] = round(by_workers[2] / by_workers[1], 3)
        multi = [w for w in by_workers if w > 1]
        if multi and cpus >= 4:
            # the *scaling* claim needs cores; on a small box a <1.0
            # best-of-sweep ratio reads as a regression when it is just
            # core starvation, so the ratio is only recorded when the
            # ≥2x-at-4-workers gate could meaningfully apply
            best_w = max(multi, key=lambda w: by_workers[w])
            headline["best_workers"] = best_w
            headline["speedup_vs_w1"] = round(
                by_workers[best_w] / by_workers[1], 3
            ) if by_workers[1] > 0 else 0.0
        elif multi:
            headline["gate_skipped"] = "cpus<4"
    if 0 in by_workers and 1 in by_workers and by_workers[0] > 0:
        headline["w1_vs_single"] = round(by_workers[1] / by_workers[0], 3)

    return {
        "benchmark": "bench_serve",
        "config": {
            "workers": list(dict.fromkeys(config.workers)),
            "n_ops": config.n_ops,
            "n_keys": config.n_keys,
            "concurrency": config.concurrency,
            "batch_size": config.batch_size,
            "value_size": config.value_size,
            "n_shards": config.n_shards,
            "workload": config.workload,
            "seed": config.seed,
            "repeats": config.repeats,
            "transport": config.transport,
            "read_paths": list(dict.fromkeys(config.read_paths)),
            "read_mixes": list(config.read_mixes),
        },
        "environment": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
            "cpus": os.cpu_count() or 1,
        },
        "headline": headline,
        "rows": rows,
        "read_mix_rows": read_rows,
    }


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable table of a :func:`run_bench_serve` document."""
    lines = ["workers  transport       ops/s   p50ms   p95ms   p99ms"
             "  completed  errors"]
    for row in report["rows"]:
        label = "single" if row["workers"] == 0 else str(row["workers"])
        transport = row.get("transport", "socket")
        lines.append(
            f"{label:>7s} {transport:>10s} {row['ops_per_sec']:>11,.0f} "
            f"{row['p50_ms']:>7.3f} {row['p95_ms']:>7.3f} "
            f"{row['p99_ms']:>7.3f} {row['completed']:>10d} "
            f"{row['errors']:>7d}"
        )
    read_rows = report.get("read_mix_rows", [])
    if read_rows:
        lines.append("")
        lines.append("read-mix crossover (workers="
                     f"{read_rows[0]['workers']})")
        lines.append("get%  read_path       ops/s       get/s   p50ms"
                     "   p95ms  errors")
        for row in read_rows:
            lines.append(
                f"{row['get_ratio'] * 100:>4.0f} {row['read_path']:>10s} "
                f"{row['ops_per_sec']:>11,.0f} {row['get_ops_per_sec']:>11,.0f} "
                f"{row['p50_ms']:>7.3f} {row['p95_ms']:>7.3f} "
                f"{row['errors']:>7d}"
            )
    headline = report["headline"]
    parts = [f"cpus={headline['cpus']}"]
    if "ops_per_sec_w1" in headline:
        parts.append(f"w1={headline['ops_per_sec_w1']:,.0f} ops/s")
    if "w2_vs_w1" in headline:
        parts.append(f"w2/w1={headline['w2_vs_w1']:.2f}x")
    if "speedup_vs_w1" in headline:
        parts.append(f"w{headline['best_workers']}/w1="
                     f"{headline['speedup_vs_w1']:.2f}x")
    if "w1_vs_single" in headline:
        parts.append(f"w1/single={headline['w1_vs_single']:.2f}x")
    for key, value in headline.items():
        if key.startswith("shared_vs_ring_get_"):
            parts.append(f"shared/ring get@{key.rsplit('_', 1)[1]}%="
                         f"{value:.2f}x")
    lines.append("headline: " + "  ".join(parts))
    if headline.get("gate_skipped"):
        lines.append(
            f"note: ≥2x scaling gate skipped ({headline['gate_skipped']}) — "
            "multi-worker speedup needs ≥4 cpus; only the w2≥w1 "
            "transport-overhead gate applies on this box"
        )
    if headline.get("read_gate_skipped"):
        lines.append(
            f"note: ≥1.5x shared-read gate skipped "
            f"({headline['read_gate_skipped']}) — the shared path's win is "
            "skipping the worker hop, which needs a core for each side"
        )
    return "\n".join(lines)


def write_report(report: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")


def load_report(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def compare_to_baseline(
    report: Dict[str, Any],
    baseline: Dict[str, Any],
    max_regression: float = 0.30,
    at_workers: int = 1,
) -> Tuple[bool, str]:
    """(ok, message) regression verdict for one sweep point.

    Only compares scale-matched runs: if the baseline was produced with a
    different workload shape (ops, batch, concurrency, shards, workload),
    the comparison is skipped and reported as ok, because ops/sec across
    different shapes says nothing about a regression.
    """
    shape_keys = ("n_ops", "n_keys", "concurrency", "batch_size",
                  "value_size", "n_shards", "workload", "transport")
    current_shape = {key: report["config"][key] for key in shape_keys}
    baseline_shape = {key: baseline["config"].get(key) for key in shape_keys}
    if current_shape != baseline_shape:
        return True, f"baseline shape differs ({baseline_shape}); skipped"
    current = {row["workers"]: row for row in report["rows"]}
    reference = {row["workers"]: row for row in baseline["rows"]}
    if at_workers not in current or at_workers not in reference:
        return True, f"no workers={at_workers} row on both sides; skipped"
    now = current[at_workers]["ops_per_sec"]
    then = reference[at_workers]["ops_per_sec"]
    floor = then * (1.0 - max_regression)
    message = (f"workers={at_workers}: {now:,.0f} ops/s vs baseline "
               f"{then:,.0f} (floor {floor:,.0f})")
    return now >= floor, message


