"""Result containers and plain-text table rendering for experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence


@dataclass
class ExperimentResult:
    """One reproduced table or figure: named rows of named columns."""

    experiment_id: str
    title: str
    columns: Sequence[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, **values: Any) -> None:
        self.rows.append(values)

    def column(self, name: str) -> List[Any]:
        return [row.get(name) for row in self.rows]

    def filter_rows(self, **match: Any) -> List[Dict[str, Any]]:
        return [
            row
            for row in self.rows
            if all(row.get(key) == value for key, value in match.items())
        ]

    def series(self, key_col: str, value_col: str, **match: Any) -> Dict[Any, Any]:
        """A {key: value} view over the matched rows, for shape assertions."""
        return {
            row[key_col]: row[value_col] for row in self.filter_rows(**match)
        }


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.001:
            return f"{value:.2e}"
        return f"{value:.4f}".rstrip("0").rstrip(".") or "0"
    return str(value)


def render(result: ExperimentResult) -> str:
    """Render an :class:`ExperimentResult` as an aligned text table."""
    header = list(result.columns)
    body = [[_format_cell(row.get(col, "")) for col in header] for row in result.rows]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
        for i in range(len(header))
    ]
    lines = [f"== {result.experiment_id}: {result.title} =="]
    lines.append("  ".join(name.ljust(widths[i]) for i, name in enumerate(header)))
    lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    for line in body:
        lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(header))))
    if result.notes:
        lines.append(f"note: {result.notes}")
    return "\n".join(lines)


def to_csv(result: ExperimentResult) -> str:
    """Render as CSV (for external plotting tools).

    Values are formatted with :func:`repr`-free plain text; cells containing
    commas or quotes are quoted per RFC 4180.
    """

    def cell(value: Any) -> str:
        text = "" if value is None else str(value)
        if any(ch in text for ch in ",\"\n"):
            text = '"' + text.replace('"', '""') + '"'
        return text

    lines = [",".join(cell(col) for col in result.columns)]
    for row in result.rows:
        lines.append(",".join(cell(row.get(col)) for col in result.columns))
    return "\n".join(lines)


def to_markdown(result: ExperimentResult) -> str:
    """Render as a GitHub-flavoured markdown table (for EXPERIMENTS.md)."""
    header = list(result.columns)
    lines = [f"### {result.experiment_id}: {result.title}", ""]
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "|".join(["---"] * len(header)) + "|")
    for row in result.rows:
        lines.append(
            "| " + " | ".join(_format_cell(row.get(col, "")) for col in header) + " |"
        )
    if result.notes:
        lines.extend(["", f"*{result.notes}*"])
    return "\n".join(lines)
