"""Terminal plots for experiment series.

The paper's figures are line charts; for a dependency-free library the
closest useful rendering is a character grid.  :func:`line_chart` draws an
:class:`ExperimentResult`-style family of series, :func:`sparkline`
condenses one series to a single line (handy in CLI summaries).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"
_MARKERS = "ox+*#@%&"


def sparkline(values: Sequence[float]) -> str:
    """One-line bar rendering of a numeric series."""
    values = list(values)
    if not values:
        return ""
    low = min(values)
    high = max(values)
    if high == low:
        return _SPARK_LEVELS[0] * len(values)
    span = high - low
    return "".join(
        _SPARK_LEVELS[
            min(len(_SPARK_LEVELS) - 1, int((v - low) / span * len(_SPARK_LEVELS)))
        ]
        for v in values
    )


def line_chart(
    series: Dict[str, Dict[float, float]],
    width: int = 60,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    log_y: bool = False,
) -> str:
    """Plot several named series on a shared character grid.

    ``series`` maps a legend label to an ``{x: y}`` mapping (the shape
    :meth:`ExperimentResult.series` returns).  Each series gets a marker
    from ``oxX*#@%&``; overlapping points show the later series' marker.
    """
    if not series:
        return "(no data)"
    import math

    points = [
        (x, y) for mapping in series.values() for x, y in mapping.items()
    ]
    if not points:
        return "(no data)"
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    if log_y:
        floor = min((y for y in ys if y > 0), default=1.0) / 2
        transform = lambda y: math.log10(max(y, floor))  # noqa: E731
        ys = [transform(y) for y in ys]
    else:
        transform = lambda y: y  # noqa: E731
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for index, (_label, mapping) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in sorted(mapping.items()):
            col = int((x - x_low) / x_span * (width - 1))
            row = int((transform(y) - y_low) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    top_value = 10**y_high if log_y else y_high
    low_value = 10**y_low if log_y else y_low
    axis_width = max(len(f"{top_value:.3g}"), len(f"{low_value:.3g}"))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{top_value:.3g}"
        elif row_index == height - 1:
            label = f"{low_value:.3g}"
        else:
            label = ""
        lines.append(f"{label:>{axis_width}} |" + "".join(row))
    lines.append(" " * axis_width + " +" + "-" * width)
    x_axis = f"{x_low:.3g}" + " " * (width - len(f"{x_low:.3g}") - len(f"{x_high:.3g}")) + f"{x_high:.3g}"
    lines.append(" " * axis_width + "  " + x_axis)
    legend = "   ".join(
        f"{_MARKERS[index % len(_MARKERS)]}={label}"
        for index, label in enumerate(series)
    )
    footer = []
    if y_label:
        footer.append(f"y: {y_label}" + (" (log)" if log_y else ""))
    if x_label:
        footer.append(f"x: {x_label}")
    lines.append(legend)
    if footer:
        lines.append("; ".join(footer))
    return "\n".join(lines)


def chart_experiment(
    result,
    x_col: str,
    y_col: str,
    group_col: str = "scheme",
    groups: Optional[Sequence[str]] = None,
    **kwargs,
) -> str:
    """Convenience: chart an :class:`ExperimentResult` directly."""
    names = groups
    if names is None:
        seen = []
        for row in result.rows:
            value = row.get(group_col)
            if value not in seen:
                seen.append(value)
        names = seen
    series = {
        str(name): result.series(x_col, y_col, **{group_col: name})
        for name in names
    }
    kwargs.setdefault("title", f"{result.experiment_id}: {result.title}")
    kwargs.setdefault("x_label", x_col)
    kwargs.setdefault("y_label", y_col)
    return line_chart(series, **kwargs)
