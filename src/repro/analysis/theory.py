"""Closed-form expectations used to cross-check the measurements.

The experiments in this library run at laptop scale, so absolute numbers
shift relative to the paper's 70M-key runs.  This module collects the
analytical results that predict *how* they shift — the test suite checks
the simulator against these, which is much stronger evidence of correctness
than matching one hard-coded constant.
"""

from __future__ import annotations

import math
from typing import Dict


def max_redundant_writes_fraction(d: int) -> float:
    """Theorem 2's bound: proactive redundant writes / table size.

    ``S * (d-1)/d + sum_{t=3..d} S/t * (t-2)/(t-1)`` in the paper's tight
    form; this returns the loose closed form ``1 + sum_{t=3..d} 1/t`` minus
    the mandatory one-write-per-item, i.e. the redundant-only fraction
    ``(d-1)/d + sum_{t=3..d} (t-2)/(t(t-1))``.

    For d = 3 this is 5/6, the number quoted in the paper.
    """
    if d < 2:
        raise ValueError("d must be at least 2")
    total = (d - 1) / d
    for t in range(3, d + 1):
        total += (t - 2) / (t * (t - 1))
    return total


def expected_first_collision_load(capacity: int, d: int = 3) -> float:
    """Expected load at the first insertion with all d candidates occupied
    (standard single-copy cuckoo).

    The i-th insertion collides with probability ≈ (i / capacity)^d, so the
    first collision is expected when ``sum_i (i/S)^d ≈ 1``, i.e. at
    ``m ≈ ((d+1) S^d)^(1/(d+1))`` items.  Shrinking tables therefore
    collide at *higher relative* load — the scale effect visible when our
    Table I numbers are compared against the paper's 70M-slot run.
    """
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    m = ((d + 1) * capacity**d) ** (1.0 / (d + 1))
    return min(1.0, m / capacity)


def dary_load_threshold(d: int) -> float:
    """Known load thresholds for random-walk d-ary cuckoo hashing (one slot
    per bucket): below the threshold insertion of a random set succeeds
    w.h.p.  Values from the cuckoo-hashing literature [20][27]."""
    thresholds: Dict[int, float] = {
        2: 0.5,
        3: 0.9179,
        4: 0.9768,
        5: 0.9924,
        6: 0.9973,
        7: 0.9990,
    }
    try:
        return thresholds[d]
    except KeyError:
        raise ValueError(f"no tabulated threshold for d={d}") from None


def bloom_false_positive_rate(m_bits: int, k_hashes: int, n_items: int) -> float:
    """Classic Bloom fp-rate (1 - e^{-kn/m})^k."""
    if m_bits <= 0 or k_hashes <= 0:
        raise ValueError("m_bits and k_hashes must be positive")
    if n_items < 0:
        raise ValueError("n_items must be non-negative")
    return (1.0 - math.exp(-k_hashes * n_items / m_bits)) ** k_hashes


def counters_zero_screen_rate(load: float, d: int = 3) -> float:
    """Probability that a never-inserted key hits at least one zero counter.

    If a fraction ``z`` of buckets carries counter 0, a random absent key is
    screened with probability ``1 - (1-z)^d``.  Under McCuckoo's fill-all-
    empties strategy the non-zero fraction at load ``alpha`` is at least
    ``alpha`` (each distinct item covers >= 1 bucket) and at most
    ``min(1, d*alpha)`` (each covers <= d); this returns the pessimistic
    screen rate using ``z = max(0, 1 - d*alpha)``.
    """
    if not 0.0 <= load <= 1.0:
        raise ValueError("load must be within [0, 1]")
    z = max(0.0, 1.0 - d * load)
    return 1.0 - (1.0 - z) ** d


def stash_rehash_probability_exponent(stash_size: int) -> int:
    """CHS [22]: a stash of size s improves the rehash probability from
    O(1/n) to O(1/n^{s+1}); returns the exponent s+1."""
    if stash_size < 0:
        raise ValueError("stash_size must be non-negative")
    return stash_size + 1


def onchip_counter_bytes(capacity: int, d: int = 3) -> int:
    """On-chip bytes McCuckoo's counter array needs (2 bits per bucket for
    d <= 3, 4 bits for d <= 15)."""
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    bits = 2 if d <= 3 else 4 if d <= 15 else 8
    return (capacity * bits + 7) // 8


def bloom_front_bytes(n_items: int, fp_rate: float) -> int:
    """On-chip bytes an EMOMA-style Bloom front needs for the same job."""
    if n_items <= 0:
        raise ValueError("n_items must be positive")
    if not 0.0 < fp_rate < 1.0:
        raise ValueError("fp_rate must be in (0, 1)")
    m = math.ceil(-n_items * math.log(fp_rate) / (math.log(2) ** 2))
    return (m + 7) // 8
