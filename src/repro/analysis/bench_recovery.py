"""Restart-time benchmark: full log replay vs checkpoint + tail replay.

The question this harness answers is the one the maintenance subsystem
exists for: *how long does a durable shard take to come back after a
crash, as its write history grows?*  Without checkpoints, recovery must
re-insert every surviving record into a fresh index, so restart time
grows with the total historical log.  With a checkpoint, the index is
restored bit-for-bit from the snapshot and only the post-checkpoint tail
is replayed — the dominant index-rebuild cost stops scaling with history
(the remaining prefix *scan* is a cheap CRC walk).

For each historical op count the harness drives an overwrite-heavy
workload into a durable :class:`~repro.apps.kvstore.LogStructuredStore`,
takes one checkpoint ``tail_ops`` appends before the end (so the tail
length is constant across sizes), then times both recovery paths over
the same surviving image:

* ``full_replay_s``   — :meth:`LogStructuredStore.recover_from_bytes`
* ``checkpoint_replay_s`` — :meth:`LogStructuredStore.recover_with_checkpoint`

Both are best-of-``repeats`` wall times.  The headline reports the
speedup at the largest history and a *flatness* ratio: how much each
path's restart time grew from the smallest to the largest history
(checkpointed recovery should grow far slower than full replay).
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Tuple

from ..apps.kvstore import LogStructuredStore


@dataclass(frozen=True)
class BenchRecoveryConfig:
    """Workload shape for one restart-time sweep.

    The live key set grows with history (mostly-unique inserts, one in
    ``overwrite_every`` ops overwriting an earlier key) — the regime where
    full replay's per-key index re-insertion dominates and checkpoints
    pay off.  A fixed-size hot set would hide the effect: both paths
    would reduce to the same linear log scan.
    """

    op_counts: Tuple[int, ...] = (2_000, 8_000, 32_000)
    overwrite_every: int = 8
    value_size: int = 32
    tail_ops: int = 64
    repeats: int = 3
    seed: int = 7

    @classmethod
    def quick(cls) -> "BenchRecoveryConfig":
        """Seconds-scale CI smoke configuration."""
        return cls(op_counts=(500, 2_000, 8_000), repeats=2)


def _drive(
    config: BenchRecoveryConfig, n_ops: int
) -> Tuple[bytes, bytes, int]:
    """Build one history: returns (image, checkpoint, log_records).

    Mostly-unique inserts (every ``overwrite_every``-th op overwrites an
    earlier key), with the checkpoint taken ``tail_ops`` appends before
    the end so the tail length is constant across history sizes.
    """
    store = LogStructuredStore(
        expected_items=max(1024, 2 * n_ops),
        seed=config.seed,
        durable=True,
    )
    checkpoint_at = max(0, n_ops - config.tail_ops)
    checkpoint = b""
    every = max(2, config.overwrite_every)
    for op in range(n_ops):
        key = op // 2 if op % every == every - 1 else op
        value = b"%08d:%08d:" % (op, key)
        value += b"v" * max(0, config.value_size - len(value))
        store.put(key, value)
        if op + 1 == checkpoint_at:
            checkpoint = store.take_checkpoint()
    if not checkpoint:
        checkpoint = store.take_checkpoint()
    return store.log_bytes, checkpoint, store.log_records


def _best_of(repeats: int, task) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        task()
        best = min(best, time.perf_counter() - start)
    return best


def run_bench_recovery(
    config: BenchRecoveryConfig, verbose: bool = False
) -> Dict[str, Any]:
    """The machine-readable report (see module docstring)."""
    rows: List[Dict[str, Any]] = []
    for n_ops in config.op_counts:
        expected = max(1024, 2 * n_ops)
        image, checkpoint, log_records = _drive(config, n_ops)

        def full() -> None:
            LogStructuredStore.recover_from_bytes(
                image, expected_items=expected, seed=config.seed
            )

        def ckpt() -> None:
            LogStructuredStore.recover_with_checkpoint(
                image, checkpoint, expected_items=expected, seed=config.seed
            )

        full_s = _best_of(config.repeats, full)
        ckpt_s = _best_of(config.repeats, ckpt)
        # sanity: the checkpointed path must actually use the checkpoint
        probe = LogStructuredStore.recover_with_checkpoint(
            image, checkpoint, expected_items=expected, seed=config.seed
        )
        report = probe.recovery_report
        assert report is not None and report.checkpoint_loaded
        row = {
            "ops": n_ops,
            "log_bytes": len(image),
            "log_records": log_records,
            "checkpoint_bytes": len(checkpoint),
            "tail_records": report.tail_records_replayed,
            "full_replay_s": round(full_s, 6),
            "checkpoint_replay_s": round(ckpt_s, 6),
            "speedup": round(full_s / ckpt_s if ckpt_s else float("inf"), 3),
        }
        rows.append(row)
        if verbose:
            print(
                f"[bench-recovery] ops={n_ops:>7} log={len(image):>9}B "
                f"full={full_s * 1e3:8.2f}ms ckpt={ckpt_s * 1e3:8.2f}ms "
                f"speedup={row['speedup']:.2f}x"
            )
    first, last = rows[0], rows[-1]

    def growth(metric: str) -> float:
        base = first[metric]
        return round(last[metric] / base if base else float("inf"), 3)

    headline = {
        "largest_ops": last["ops"],
        "speedup": last["speedup"],
        "full_replay_growth": growth("full_replay_s"),
        "checkpoint_replay_growth": growth("checkpoint_replay_s"),
        "history_growth": growth("log_bytes"),
    }
    return {"config": asdict(config), "rows": rows, "headline": headline}


def render_report(report: Dict[str, Any]) -> str:
    lines = [
        "restart time vs historical log size "
        "(full replay vs checkpoint + tail)",
        f"{'ops':>8} {'log bytes':>10} {'tail':>5} "
        f"{'full (ms)':>10} {'ckpt (ms)':>10} {'speedup':>8}",
    ]
    for row in report["rows"]:
        lines.append(
            f"{row['ops']:>8} {row['log_bytes']:>10} {row['tail_records']:>5} "
            f"{row['full_replay_s'] * 1e3:>10.2f} "
            f"{row['checkpoint_replay_s'] * 1e3:>10.2f} "
            f"{row['speedup']:>7.2f}x"
        )
    headline = report["headline"]
    lines.append(
        f"headline: {headline['speedup']:.2f}x at {headline['largest_ops']} "
        f"ops; over a {headline['history_growth']:.1f}x history, full replay "
        f"grew {headline['full_replay_growth']:.1f}x vs "
        f"{headline['checkpoint_replay_growth']:.1f}x checkpointed"
    )
    return "\n".join(lines)


def write_report(report: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")


def load_report(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def compare_to_baseline(
    report: Dict[str, Any],
    baseline: Dict[str, Any],
    max_regression: float = 0.30,
) -> Tuple[bool, str]:
    """(ok, message): checkpointed restart may not slow down by more than
    ``max_regression`` against the committed baseline.  Only shape-matched
    runs are compared; a differing workload shape is skipped and ok."""
    if report["config"] != baseline["config"]:
        return True, f"baseline shape differs ({baseline['config']}); skipped"
    current = {row["ops"]: row["checkpoint_replay_s"] for row in report["rows"]}
    reference = {
        row["ops"]: row["checkpoint_replay_s"] for row in baseline["rows"]
    }
    regressions = []
    for ops in sorted(set(current) & set(reference)):
        if reference[ops] <= 0:
            continue
        ratio = current[ops] / reference[ops] - 1.0
        if ratio > max_regression:
            regressions.append(f"ops={ops}: {ratio:+.0%}")
    if regressions:
        return False, "checkpointed restart regressed: " + ", ".join(regressions)
    return True, (
        f"{len(set(current) & set(reference))} sizes within "
        f"{max_regression:.0%} of baseline"
    )


__all__ = [
    "BenchRecoveryConfig",
    "compare_to_baseline",
    "load_report",
    "render_report",
    "run_bench_recovery",
    "write_report",
]
