"""Sweep utilities: fill tables along a load grid and measure per-op costs.

All figure experiments share one shape — build the four schemes at matched
capacity, fill them while measuring marginal insertion cost per load band,
and probe lookups/deletions at grid points.  This module provides those
building blocks; :mod:`repro.analysis.experiments` composes them per figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from ..baselines import BCHT, CuckooTable
from ..core import BlockedMcCuckoo, DeletionMode, FailurePolicy, McCuckoo
from ..core.interface import HashTable
from ..hashing import HashFamily, Key
from ..memory.model import MemoryModel, OpStats
from ..workloads import key_stream

SchemeFactory = Callable[[], HashTable]


@dataclass(frozen=True)
class Scale:
    """Experiment scale knobs (kept laptop-friendly by default).

    ``n_single`` is the bucket count per sub-table of the single-slot
    schemes; blocked schemes use ``n_single / slots`` buckets so all four
    schemes have identical capacity (3 * n_single items for d=3, l=3).
    """

    n_single: int = 2000
    d: int = 3
    slots: int = 3
    maxloop: int = 500
    repeats: int = 3
    n_queries: int = 2000
    seed: int = 7
    stash_buckets: int = 256

    @property
    def capacity(self) -> int:
        return self.d * self.n_single

    @property
    def n_blocked(self) -> int:
        return max(1, self.n_single // self.slots)


def make_schemes(
    scale: Scale,
    seed: int,
    family: Optional[HashFamily] = None,
    deletion_mode: DeletionMode = DeletionMode.DISABLED,
) -> Dict[str, SchemeFactory]:
    """Factories for the paper's four schemes at matched capacity.

    Single-copy baselines use ``FailurePolicy.FAIL`` (roll back and keep
    going) so fill sweeps can push them to their load limit; the multi-copy
    schemes use the paper's off-chip stash.
    """

    def cuckoo() -> HashTable:
        return CuckooTable(
            scale.n_single,
            d=scale.d,
            maxloop=scale.maxloop,
            seed=seed,
            family=family,
            on_failure=FailurePolicy.FAIL,
        )

    def mccuckoo() -> HashTable:
        return McCuckoo(
            scale.n_single,
            d=scale.d,
            maxloop=scale.maxloop,
            seed=seed,
            family=family,
            stash_buckets=scale.stash_buckets,
            deletion_mode=deletion_mode,
        )

    def bcht() -> HashTable:
        return BCHT(
            scale.n_blocked,
            d=scale.d,
            slots=scale.slots,
            maxloop=scale.maxloop,
            seed=seed,
            family=family,
            on_failure=FailurePolicy.FAIL,
        )

    def blocked_mccuckoo() -> HashTable:
        return BlockedMcCuckoo(
            scale.n_blocked,
            d=scale.d,
            slots=scale.slots,
            maxloop=scale.maxloop,
            seed=seed,
            family=family,
            stash_buckets=scale.stash_buckets,
            deletion_mode=deletion_mode,
        )

    return {
        "Cuckoo": cuckoo,
        "McCuckoo": mccuckoo,
        "BCHT": bcht,
        "B-McCuckoo": blocked_mccuckoo,
    }


SINGLE_SLOT_LOADS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.85, 0.9)
BLOCKED_LOADS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.98)


def loads_for(scheme_name: str) -> Sequence[float]:
    """The paper sweeps blocked schemes to higher loads than single-slot."""
    return BLOCKED_LOADS if scheme_name in ("BCHT", "B-McCuckoo") else SINGLE_SLOT_LOADS


@dataclass
class FillPoint:
    """Marginal insertion statistics for the band ending at ``load``."""

    load: float
    insert_stats: OpStats = field(default_factory=OpStats)
    inserted_keys: List[Key] = field(default_factory=list)


def measured_fill(
    table: HashTable,
    loads: Sequence[float],
    keys: Iterator[Key],
    max_consecutive_failures: int = 64,
) -> List[FillPoint]:
    """Fill ``table`` to each target load, measuring each band's insertions.

    The statistics of a :class:`FillPoint` cover only the insertions between
    the previous grid point and its own — i.e. the *marginal* cost of
    inserting at that load, which is what the paper's per-load curves show.
    Filling stops early if the table saturates (repeated failures).
    """
    points: List[FillPoint] = []
    consecutive_failures = 0
    for load in sorted(loads):
        point = FillPoint(load=load)
        target = int(load * table.capacity)
        while len(table) < target:
            key = next(keys)
            with table.mem.measure() as measurement:
                outcome = table.put(key)
            assert measurement.delta is not None
            point.insert_stats.add(measurement.delta, kicks=outcome.kicks)
            if outcome.failed:
                consecutive_failures += 1
                if consecutive_failures >= max_consecutive_failures:
                    points.append(point)
                    return points
            else:
                consecutive_failures = 0
                point.inserted_keys.append(table._canonical(key))
        points.append(point)
    return points


def measure_lookups(
    table: HashTable, query_keys: Sequence[Key], mem: Optional[MemoryModel] = None
) -> OpStats:
    """Per-lookup access statistics over a batch of queries."""
    memory = mem if mem is not None else table.mem
    stats = OpStats()
    for key in query_keys:
        with memory.measure() as measurement:
            table.lookup(key)
        assert measurement.delta is not None
        stats.add(measurement.delta)
    return stats


def measure_deletes(table: HashTable, keys_to_delete: Sequence[Key]) -> OpStats:
    """Per-deletion access statistics."""
    stats = OpStats()
    for key in keys_to_delete:
        with table.mem.measure() as measurement:
            table.delete(key)
        assert measurement.delta is not None
        stats.add(measurement.delta)
    return stats


def fill_fresh(
    factory: SchemeFactory, load: float, seed: int
) -> tuple:
    """Build a fresh table and fill it to ``load``; returns (table, keys)."""
    table = factory()
    keys = key_stream(seed=seed)
    inserted: List[Key] = []
    target = int(load * table.capacity)
    consecutive_failures = 0
    while len(table) < target:
        key = next(keys)
        outcome = table.put(key)
        if outcome.failed:
            consecutive_failures += 1
            if consecutive_failures >= 64:
                break
        else:
            consecutive_failures = 0
            inserted.append(table._canonical(key))
    return table, inserted
