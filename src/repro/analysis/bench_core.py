"""Wall-clock throughput harness for the batched operation kernels.

The paper's exhibits count *memory accesses*; this module measures the
other axis the batched kernels exist for — host-side throughput.  It
times scalar ``lookup``/``put``/``delete`` loops against their
``lookup_many``/``put_many``/``delete_many`` counterparts on a
:class:`~repro.core.mccuckoo.McCuckoo` table and reports ops/sec plus the
batched-over-scalar speedup.  ``repro bench-core`` and
``benchmarks/bench_core_throughput.py`` are thin wrappers around
:func:`run_bench_core`; the emitted ``BENCH_core.json`` is the
perf-regression baseline committed under ``benchmarks/results/``.

Methodology notes:

* Throughput is best-of-``repeats`` (minimum wall time), the standard way
  to suppress scheduler noise in micro-benchmarks.
* Lookup tables are built once per load factor and reused — lookups do
  not mutate.  Write phases rebuild state per measurement.
* Queries are uniform over the resident key set, so the 0.9-load lookup
  row matches the acceptance criterion "≥3x on 100k uniform lookups at
  0.9 load".
"""

from __future__ import annotations

import json
import platform
import random
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.config import DeletionMode
from ..core.engine import BACKENDS
from ..core.mccuckoo import McCuckoo
from ..memory.model import MemoryModel


@dataclass(frozen=True)
class BenchCoreConfig:
    """Shape of one :func:`run_bench_core` run."""

    n_buckets: int = 40_000
    """Buckets per sub-table (capacity = ``d * n_buckets`` items)."""
    d: int = 3
    seed: int = 1
    n_lookups: int = 100_000
    n_deletes: int = 20_000
    load_factors: Tuple[float, ...] = (0.5, 0.7, 0.9)
    batch_sizes: Tuple[int, ...] = (16, 64, 256)
    repeats: int = 3
    backends: Tuple[str, ...] = ("python",)
    """Engine backends to measure; every (phase, load, batch) cell is
    repeated per backend and rows are tagged with it."""
    highload_loads: Tuple[float, ...] = (0.95, 0.97)
    """Fills for the high-load frontier section.  The main d=3 grid cannot
    reach these (the d=3 threshold is ~0.918), so this section runs on a
    separate d=4 table under the ``bubbling`` kick policy; empty disables
    the section."""
    highload_buckets: int = 10_000
    highload_d: int = 4
    highload_policy: str = "bubbling"

    @classmethod
    def quick(cls) -> "BenchCoreConfig":
        """A seconds-scale variant for CI smoke runs."""
        return cls(
            n_buckets=4_000,
            n_lookups=10_000,
            n_deletes=3_000,
            load_factors=(0.9,),
            batch_sizes=(64, 256),
            repeats=2,
            highload_loads=(0.95,),
            highload_buckets=2_000,
        )


@dataclass
class BenchRow:
    """One measured (phase, load, batch, backend) cell."""

    phase: str
    load: float
    batch: int  # 1 = scalar
    n_ops: int
    best_seconds: float
    ops_per_sec: float
    speedup: Optional[float] = None  # vs the scalar row of the same cell
    backend: str = "python"
    extra: Dict[str, Any] = field(default_factory=dict)


def _fill_to(table: McCuckoo, target_items: int, rng: random.Random) -> List[int]:
    """Insert random keys until ``len(table) == target_items``; returns them."""
    keys: List[int] = []
    while len(table) < target_items:
        key = rng.getrandbits(64)
        outcome = table.put(key)
        if outcome.failed:
            continue
        keys.append(key)
    return keys


def _best_of(repeats: int, run: Callable[[], int]) -> Tuple[float, int]:
    """(best wall seconds, ops) over ``repeats`` calls of ``run``."""
    best = float("inf")
    n_ops = 0
    for _ in range(repeats):
        start = time.perf_counter()
        n_ops = run()
        best = min(best, time.perf_counter() - start)
    return best, n_ops


def _best_of_timed(repeats: int, run: Callable[[], Tuple[float, int]]) -> Tuple[float, int]:
    """Like :func:`_best_of` for runs that time themselves (to exclude
    per-repeat setup such as rebuilding a table)."""
    best = float("inf")
    n_ops = 0
    for _ in range(repeats):
        elapsed, n_ops = run()
        best = min(best, elapsed)
    return best, n_ops


def _chunks(items: Sequence, size: int) -> List[Sequence]:
    return [items[start:start + size] for start in range(0, len(items), size)]


def _bench_lookups(config: BenchCoreConfig, rows: List[BenchRow],
                   backend: str) -> None:
    for load in config.load_factors:
        rng = random.Random(config.seed)
        table = McCuckoo(config.n_buckets, d=config.d, seed=config.seed,
                         mem=MemoryModel(), engine=backend)
        keys = _fill_to(table, int(load * table.capacity), rng)
        queries = [keys[rng.randrange(len(keys))]
                   for _ in range(config.n_lookups)]

        def scalar() -> int:
            lookup = table.lookup
            for key in queries:
                lookup(key)
            return len(queries)

        best, n_ops = _best_of(config.repeats, scalar)
        scalar_rate = n_ops / best
        rows.append(BenchRow("lookup", load, 1, n_ops, best, scalar_rate,
                             backend=backend))

        for batch in config.batch_sizes:
            batches = _chunks(queries, batch)

            def batched() -> int:
                lookup_many = table.lookup_many
                for chunk in batches:
                    lookup_many(chunk)
                return len(queries)

            best, n_ops = _best_of(config.repeats, batched)
            rate = n_ops / best
            rows.append(BenchRow("lookup", load, batch, n_ops, best, rate,
                                 speedup=rate / scalar_rate, backend=backend))


def _bench_puts(config: BenchCoreConfig, rows: List[BenchRow],
                backend: str) -> None:
    """Insert from empty up to each load factor, scalar vs ``put_many``."""
    for load in config.load_factors:
        rng = random.Random(config.seed + 7)
        sizing = McCuckoo(config.n_buckets, d=config.d, seed=config.seed)
        target = int(load * sizing.capacity)
        keys = [rng.getrandbits(64) for _ in range(target)]

        def scalar() -> int:
            table = McCuckoo(config.n_buckets, d=config.d, seed=config.seed,
                             mem=MemoryModel(), engine=backend)
            put = table.put
            for key in keys:
                put(key)
            return len(keys)

        best, n_ops = _best_of(config.repeats, scalar)
        scalar_rate = n_ops / best
        rows.append(BenchRow("put", load, 1, n_ops, best, scalar_rate,
                             backend=backend))

        for batch in config.batch_sizes:
            batches = _chunks([(key, None) for key in keys], batch)

            def batched() -> int:
                table = McCuckoo(config.n_buckets, d=config.d,
                                 seed=config.seed, mem=MemoryModel(),
                                 engine=backend)
                put_many = table.put_many
                for chunk in batches:
                    put_many(chunk)
                return len(keys)

            best, n_ops = _best_of(config.repeats, batched)
            rate = n_ops / best
            rows.append(BenchRow("put", load, batch, n_ops, best, rate,
                                 speedup=rate / scalar_rate, backend=backend))


def _bench_deletes(config: BenchCoreConfig, rows: List[BenchRow],
                   backend: str) -> None:
    """Delete resident keys from a table at the deepest load factor."""
    load = max(config.load_factors)
    rng = random.Random(config.seed + 13)

    def build() -> Tuple[McCuckoo, List[int]]:
        build_rng = random.Random(config.seed + 13)
        table = McCuckoo(config.n_buckets, d=config.d, seed=config.seed,
                         deletion_mode=DeletionMode.RESET, mem=MemoryModel(),
                         engine=backend)
        keys = _fill_to(table, int(load * table.capacity), build_rng)
        return table, keys

    table, keys = build()
    victims = rng.sample(keys, min(config.n_deletes, len(keys)))

    def scalar() -> Tuple[float, int]:
        fresh, _ = build()  # untimed: the rebuild is setup, not the op
        delete = fresh.delete
        start = time.perf_counter()
        for key in victims:
            delete(key)
        return time.perf_counter() - start, len(victims)

    best, n_ops = _best_of_timed(config.repeats, scalar)
    scalar_rate = n_ops / best
    rows.append(BenchRow("delete", load, 1, n_ops, best, scalar_rate,
                         backend=backend))

    for batch in config.batch_sizes:
        batches = _chunks(victims, batch)

        def batched() -> Tuple[float, int]:
            fresh, _ = build()
            delete_many = fresh.delete_many
            start = time.perf_counter()
            for chunk in batches:
                delete_many(chunk)
            return time.perf_counter() - start, len(victims)

        best, n_ops = _best_of_timed(config.repeats, batched)
        rate = n_ops / best
        rows.append(BenchRow("delete", load, batch, n_ops, best, rate,
                             speedup=rate / scalar_rate, backend=backend))


def _bench_highload(config: BenchCoreConfig, rows: List[BenchRow],
                    backend: str) -> None:
    """Frontier cells: d=4 + ``bubbling`` at loads the d=3 grid can't hold.

    Per load this times the full scalar fill from empty (put), a batched
    ``put_many`` fill, and scalar + batched lookups over the resident
    keys.  Rows carry the policy/d/kick cost in ``extra`` so the committed
    baseline also documents the insert-cost side of the frontier claim.
    """
    batch = max(config.batch_sizes)
    for load in config.highload_loads:

        def make_table() -> McCuckoo:
            return McCuckoo(config.highload_buckets, d=config.highload_d,
                            seed=config.seed, mem=MemoryModel(),
                            engine=backend,
                            kick_policy=config.highload_policy)

        rng = random.Random(config.seed + 31)
        sizing = make_table()
        target = int(load * sizing.capacity)
        keys = [rng.getrandbits(64) for _ in range(target)]
        extra_base = {"d": config.highload_d,
                      "policy": config.highload_policy}

        def scalar_put() -> Tuple[float, int]:
            table = make_table()
            put = table.put
            start = time.perf_counter()
            for key in keys:
                put(key)
            elapsed = time.perf_counter() - start
            scalar_put.kicks = table.total_kicks / max(1, len(keys))
            scalar_put.stash = len(table.stash) if table.stash else 0
            return elapsed, len(keys)

        best, n_ops = _best_of_timed(config.repeats, scalar_put)
        scalar_rate = n_ops / best
        rows.append(BenchRow(
            "put", load, 1, n_ops, best, scalar_rate, backend=backend,
            extra={**extra_base,
                   "kicks_per_insert": round(scalar_put.kicks, 3),
                   "stash_items": scalar_put.stash}))

        def batched_put() -> Tuple[float, int]:
            table = make_table()
            put_many = table.put_many
            chunks = _chunks([(key, None) for key in keys], batch)
            start = time.perf_counter()
            for chunk in chunks:
                put_many(chunk)
            return time.perf_counter() - start, len(keys)

        best, n_ops = _best_of_timed(config.repeats, batched_put)
        rate = n_ops / best
        rows.append(BenchRow("put", load, batch, n_ops, best, rate,
                             speedup=rate / scalar_rate, backend=backend,
                             extra=dict(extra_base)))

        table = make_table()
        for key in keys:
            table.put(key)
        queries = [keys[rng.randrange(len(keys))]
                   for _ in range(config.n_lookups)]

        def scalar_lookup() -> int:
            lookup = table.lookup
            for key in queries:
                lookup(key)
            return len(queries)

        best, n_ops = _best_of(config.repeats, scalar_lookup)
        scalar_rate = n_ops / best
        rows.append(BenchRow("lookup", load, 1, n_ops, best, scalar_rate,
                             backend=backend, extra=dict(extra_base)))

        query_chunks = _chunks(queries, batch)

        def batched_lookup() -> int:
            lookup_many = table.lookup_many
            for chunk in query_chunks:
                lookup_many(chunk)
            return len(queries)

        best, n_ops = _best_of(config.repeats, batched_lookup)
        rate = n_ops / best
        rows.append(BenchRow("lookup", load, batch, n_ops, best, rate,
                             speedup=rate / scalar_rate, backend=backend,
                             extra=dict(extra_base)))


def _headline_for(rows: List[BenchRow], phases: Sequence[str],
                  deepest: float, backend: str) -> Dict[str, Any]:
    headline: Dict[str, Any] = {}
    for phase in phases:
        candidates = [row for row in rows
                      if row.phase == phase and row.load == deepest
                      and row.backend == backend
                      and row.speedup is not None]
        if candidates:
            best_row = max(candidates, key=lambda row: row.speedup)
            headline[f"{phase}_speedup"] = round(best_row.speedup, 3)
            headline[f"{phase}_batch"] = best_row.batch
    headline["load"] = deepest
    return headline


def run_bench_core(config: Optional[BenchCoreConfig] = None,
                   phases: Sequence[str] = ("lookup", "put", "delete"),
                   verbose: bool = False,
                   profile: bool = False) -> Dict[str, Any]:
    """Run the harness and return the ``BENCH_core.json`` document.

    With ``profile``, every cell runs a single repeat under :mod:`cProfile`
    and the top-20 cumulative-time entries are printed to stderr — the
    intended way to see where kernel time actually goes per backend.
    """
    config = config if config is not None else BenchCoreConfig()
    for backend in config.backends:
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
    if profile:
        import cProfile
        import dataclasses
        import pstats

        config = dataclasses.replace(config, repeats=1)
    rows: List[BenchRow] = []
    highload_rows: List[BenchRow] = []
    for backend in config.backends:
        for phase, bench in (("lookup", _bench_lookups), ("put", _bench_puts),
                             ("delete", _bench_deletes)):
            if phase not in phases:
                continue
            start = time.perf_counter()
            if profile:
                profiler = cProfile.Profile()
                profiler.enable()
                bench(config, rows, backend)
                profiler.disable()
                print(f"--- profile: {phase} [{backend}] ---", file=sys.stderr)
                stats = pstats.Stats(profiler, stream=sys.stderr)
                stats.sort_stats("cumulative").print_stats(20)
            else:
                bench(config, rows, backend)
            if verbose:
                print(f"[{phase} ({backend}): "
                      f"{time.perf_counter() - start:.1f}s]",
                      file=sys.stderr)
        if config.highload_loads:
            start = time.perf_counter()
            _bench_highload(config, highload_rows, backend)
            if verbose:
                print(f"[highload ({backend}): "
                      f"{time.perf_counter() - start:.1f}s]",
                      file=sys.stderr)

    deepest = max(config.load_factors)
    # Top-level headline keys describe the first (primary) backend so the
    # document shape is unchanged for single-backend runs; per-backend
    # headlines sit beside them.
    headline = _headline_for(rows, phases, deepest, config.backends[0])
    headline["backend"] = config.backends[0]
    by_backend = {
        backend: _headline_for(rows, phases, deepest, backend)
        for backend in config.backends
    }

    return {
        "benchmark": "bench_core",
        "config": {
            "n_buckets": config.n_buckets,
            "d": config.d,
            "seed": config.seed,
            "n_lookups": config.n_lookups,
            "n_deletes": config.n_deletes,
            "load_factors": list(config.load_factors),
            "batch_sizes": list(config.batch_sizes),
            "repeats": config.repeats,
            "backends": list(config.backends),
            "highload_loads": list(config.highload_loads),
            "highload_buckets": config.highload_buckets,
            "highload_d": config.highload_d,
            "highload_policy": config.highload_policy,
        },
        "environment": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
        },
        "headline": headline,
        "headline_by_backend": by_backend,
        "rows": [
            {
                "phase": row.phase,
                "load": row.load,
                "batch": row.batch,
                "backend": row.backend,
                "n_ops": row.n_ops,
                "best_seconds": round(row.best_seconds, 6),
                "ops_per_sec": round(row.ops_per_sec, 1),
                **({"speedup": round(row.speedup, 3)}
                   if row.speedup is not None else {}),
            }
            for row in rows
        ],
        "highload_rows": [
            {
                "phase": row.phase,
                "load": row.load,
                "batch": row.batch,
                "backend": row.backend,
                "n_ops": row.n_ops,
                "best_seconds": round(row.best_seconds, 6),
                "ops_per_sec": round(row.ops_per_sec, 1),
                **({"speedup": round(row.speedup, 3)}
                   if row.speedup is not None else {}),
                **row.extra,
            }
            for row in highload_rows
        ],
    }


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable table of a :func:`run_bench_core` document."""
    lines = ["phase    load  batch  backend      ops/s  speedup"]
    for row in report["rows"]:
        speedup = f"{row['speedup']:.2f}x" if "speedup" in row else "  -"
        batch = "scalar" if row["batch"] == 1 else str(row["batch"])
        backend = row.get("backend", "python")
        lines.append(f"{row['phase']:<8s} {row['load']:.2f} {batch:>6s} "
                     f"{backend:>8s} {row['ops_per_sec']:>10,.0f}  "
                     f"{speedup:>6s}")
    by_backend = report.get(
        "headline_by_backend",
        {report["headline"].get("backend", "python"): report["headline"]},
    )
    for backend, headline in by_backend.items():
        parts = [f"{phase}={headline[f'{phase}_speedup']:.2f}x"
                 f"@bs{headline[f'{phase}_batch']}"
                 for phase in ("lookup", "put", "delete")
                 if f"{phase}_speedup" in headline]
        lines.append(f"headline [{backend}] (load {headline['load']}): "
                     + "  ".join(parts))
    highload = report.get("highload_rows", [])
    if highload:
        config = report.get("config", {})
        lines.append(
            f"high-load frontier (d={config.get('highload_d', '?')}, "
            f"policy {config.get('highload_policy', '?')}):")
        for row in highload:
            speedup = f"{row['speedup']:.2f}x" if "speedup" in row else "  -"
            batch = "scalar" if row["batch"] == 1 else str(row["batch"])
            extras = ""
            if "kicks_per_insert" in row:
                extras = (f"  kicks/ins {row['kicks_per_insert']:.2f}"
                          f"  stash {row.get('stash_items', 0)}")
            lines.append(f"{row['phase']:<8s} {row['load']:.2f} {batch:>6s} "
                         f"{row.get('backend', 'python'):>8s} "
                         f"{row['ops_per_sec']:>10,.0f}  {speedup:>6s}{extras}")
    return "\n".join(lines)


def load_report(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def compare_to_baseline(
    report: Dict[str, Any],
    baseline: Dict[str, Any],
    max_regression: float = 0.30,
    backend: str = "python",
) -> Tuple[bool, str]:
    """(ok, message) regression verdict for one backend's batched rows.

    Only compares scale-matched runs: a baseline produced with a different
    workload shape (buckets, d, query counts, loads, batches) says nothing
    about a regression, so mismatches are skipped and reported ok.
    Baseline rows without a ``backend`` tag predate the engine split and
    are treated as python-backend rows.
    """
    shape_keys = ("n_buckets", "d", "seed", "n_lookups", "n_deletes",
                  "load_factors", "batch_sizes")
    current_shape = {key: report["config"].get(key) for key in shape_keys}
    baseline_shape = {key: baseline["config"].get(key) for key in shape_keys}
    if current_shape != baseline_shape:
        return True, f"baseline shape differs ({baseline_shape}); skipped"

    def cells(document: Dict[str, Any]) -> Dict[Tuple, float]:
        return {
            (row["phase"], row["load"], row["batch"]): row["ops_per_sec"]
            for row in document["rows"]
            if row.get("backend", "python") == backend and row["batch"] > 1
        }

    current = cells(report)
    reference = cells(baseline)
    shared = sorted(set(current) & set(reference))
    if not shared:
        return True, f"no shared {backend}-backend cells; skipped"
    worst: Optional[Tuple[Tuple, float, float]] = None
    for cell in shared:
        ratio = current[cell] / reference[cell]
        if worst is None or ratio < worst[1]:
            worst = (cell, ratio, reference[cell])
    assert worst is not None
    cell, ratio, then = worst
    floor = 1.0 - max_regression
    message = (f"{backend} {cell[0]}@load{cell[1]}/bs{cell[2]}: "
               f"{current[cell]:,.0f} ops/s vs baseline {then:,.0f} "
               f"({ratio:.2f}x, floor {floor:.2f}x)")
    return ratio >= floor, message


def compare_highload_to_baseline(
    report: Dict[str, Any],
    baseline: Dict[str, Any],
    max_regression: float = 0.30,
    backend: str = "python",
) -> Tuple[bool, str]:
    """(ok, message) gate for the high-load frontier section.

    Two assertions: every baseline (phase, load, batch) frontier cell must
    still exist — the frontier cannot silently recede to lower loads — and
    throughput per shared cell must stay within ``max_regression`` of the
    committed number.  Shape-mismatched baselines are skipped like
    :func:`compare_to_baseline`; baselines predating the section pass."""
    if not baseline.get("highload_rows"):
        return True, "baseline has no high-load section; skipped"
    shape_keys = ("highload_buckets", "highload_d", "highload_policy",
                  "highload_loads", "seed", "n_lookups")
    current_shape = {key: report["config"].get(key) for key in shape_keys}
    baseline_shape = {key: baseline["config"].get(key) for key in shape_keys}
    if current_shape != baseline_shape:
        return True, f"high-load shape differs ({baseline_shape}); skipped"

    def cells(document: Dict[str, Any]) -> Dict[Tuple, float]:
        return {
            (row["phase"], row["load"], row["batch"]): row["ops_per_sec"]
            for row in document.get("highload_rows", [])
            if row.get("backend", "python") == backend
        }

    current = cells(report)
    reference = cells(baseline)
    if not reference:
        return True, f"no {backend}-backend high-load baseline cells; skipped"
    missing = sorted(set(reference) - set(current))
    if missing:
        return False, (f"high-load frontier receded: baseline cells "
                       f"{missing} absent from this run")
    worst: Optional[Tuple[Tuple, float, float]] = None
    for cell in sorted(reference):
        ratio = current[cell] / reference[cell]
        if worst is None or ratio < worst[1]:
            worst = (cell, ratio, reference[cell])
    assert worst is not None
    cell, ratio, then = worst
    floor = 1.0 - max_regression
    message = (f"{backend} highload {cell[0]}@load{cell[1]}/bs{cell[2]}: "
               f"{current[cell]:,.0f} ops/s vs baseline {then:,.0f} "
               f"({ratio:.2f}x, floor {floor:.2f}x)")
    return ratio >= floor, message


def write_report(report: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
