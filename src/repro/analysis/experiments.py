"""Reproductions of every table and figure in the paper's §IV.

Each ``fig*``/``table*`` function regenerates one exhibit and returns an
:class:`ExperimentResult` whose rows mirror the paper's series.  Absolute
numbers differ from the paper (Python simulator at reduced scale instead of
a C++/FPGA testbed on 70M keys) but each function's docstring states the
shape that must hold, and the benchmark suite asserts it.

The heavy lifting — filling the four schemes along a load grid while
measuring marginal insertion cost and probing lookups — happens once in
:func:`run_core_sweep`; the per-figure functions are views over it.  Pass
its result via the ``sweep=`` parameter to share one run across figures.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..baselines import CHS, CuckooTable
from ..core import (
    BlockedMcCuckoo,
    BubblingPolicy,
    DeletionMode,
    FailurePolicy,
    McCuckoo,
    MinCounterPolicy,
    RandomWalkPolicy,
    SiblingTracking,
    WearAwarePolicy,
)
from ..memory.wear import WearMeter
from ..hashing import Key
from ..memory.latency import PAPER_FPGA, LatencyModel
from ..memory.model import OpStats
from ..workloads import key_stream, missing_keys, sample_keys
from .sweep import (
    Scale,
    fill_fresh,
    loads_for,
    make_schemes,
    measure_deletes,
    measured_fill,
    measure_lookups,
)
from .tables import ExperimentResult

SCHEMES = ("Cuckoo", "McCuckoo", "BCHT", "B-McCuckoo")


# ---------------------------------------------------------------------------
# the shared load sweep
# ---------------------------------------------------------------------------


class SweepRow:
    """Measurements for one (scheme, load) cell, merged across repeats."""

    def __init__(self, scheme: str, load: float) -> None:
        self.scheme = scheme
        self.load = load
        self.insert = OpStats()
        self.lookup_existing = OpStats()
        self.lookup_missing = OpStats()


def run_core_sweep(scale: Scale = Scale()) -> Dict[Tuple[str, float], SweepRow]:
    """Fill all four schemes along their load grids, ``scale.repeats`` times.

    At every grid point the marginal insertion statistics of the band are
    recorded, then ``scale.n_queries`` lookups for existing keys and the
    same number for never-inserted keys are measured on the live table.
    """
    cells: Dict[Tuple[str, float], SweepRow] = {}
    for repeat in range(scale.repeats):
        seed = scale.seed + repeat * 1009
        schemes = make_schemes(scale, seed=seed)
        for scheme_name, factory in schemes.items():
            table = factory()
            keys = key_stream(seed=seed ^ 0xF111)
            inserted: List[Key] = []
            for load in loads_for(scheme_name):
                # Fill one band, then measure lookups on the table *at this
                # load* before the next band fills it further.
                points = measured_fill(table, (load,), keys)
                point = points[0]
                inserted.extend(point.inserted_keys)
                cell = cells.setdefault(
                    (scheme_name, point.load), SweepRow(scheme_name, point.load)
                )
                cell.insert.merge(point.insert_stats)
                if not inserted:
                    continue
                n_queries = min(scale.n_queries, len(inserted))
                existing = sample_keys(inserted, n_queries, seed=seed)
                cell.lookup_existing.merge(measure_lookups(table, existing))
                absent = missing_keys(n_queries, set(inserted), seed=seed + 1)
                cell.lookup_missing.merge(measure_lookups(table, absent))
                if len(table) < int(load * table.capacity):
                    break  # saturated: later grid points are unreachable
    return cells


def _sweep(scale: Scale, sweep: Optional[Dict]) -> Dict[Tuple[str, float], SweepRow]:
    return sweep if sweep is not None else run_core_sweep(scale)


def _sorted_cells(cells: Dict[Tuple[str, float], SweepRow]) -> List[SweepRow]:
    ordered = sorted(
        cells.values(), key=lambda cell: (SCHEMES.index(cell.scheme), cell.load)
    )
    return ordered


# ---------------------------------------------------------------------------
# Fig. 9 / Fig. 10 — insertion cost
# ---------------------------------------------------------------------------


def fig9_kickouts(
    scale: Scale = Scale(), sweep: Optional[Dict] = None
) -> ExperimentResult:
    """Fig. 9: kick-outs per insertion vs load.

    Expected shape: near zero for everyone at low load; at high load the
    multi-copy schemes kick far less than their single-copy counterparts
    (paper: −59.3 % for ternary at 85 %, −77.9 % for blocked at 95 %).
    """
    result = ExperimentResult(
        "fig9",
        "Kick-outs per insertion vs load ratio",
        columns=("scheme", "load", "kicks_per_insert"),
        notes="marginal cost of the insertions in the band ending at each load",
    )
    for cell in _sorted_cells(_sweep(scale, sweep)):
        result.add_row(
            scheme=cell.scheme, load=cell.load, kicks_per_insert=cell.insert.kicks_per_op
        )
    return result


def fig10_memaccess(
    scale: Scale = Scale(), sweep: Optional[Dict] = None
) -> ExperimentResult:
    """Fig. 10: off-chip reads (a) and writes (b) per insertion vs load.

    Expected shape: multi-copy reads ≈ 0 at low load and far below
    single-copy everywhere; multi-copy writes higher at low load (redundant
    copies) with a crossover near half load, lower beyond.
    """
    result = ExperimentResult(
        "fig10",
        "Off-chip memory accesses per insertion vs load ratio",
        columns=("scheme", "load", "reads_per_insert", "writes_per_insert"),
    )
    for cell in _sorted_cells(_sweep(scale, sweep)):
        result.add_row(
            scheme=cell.scheme,
            load=cell.load,
            reads_per_insert=cell.insert.offchip_reads_per_op,
            writes_per_insert=cell.insert.offchip_writes_per_op,
        )
    return result


# ---------------------------------------------------------------------------
# Table I / Fig. 11 — collision and failure onset
# ---------------------------------------------------------------------------


def table1_first_collision(scale: Scale = Scale()) -> ExperimentResult:
    """Table I: load ratio at which the first real collision occurs.

    Expected shape: multi-copy schemes collide much later than single-copy
    (paper: 9.27 % → 23.20 % single-slot; 46.03 % → 61.42 % blocked).
    """
    result = ExperimentResult(
        "table1",
        "Load ratio when the first collision occurs",
        columns=("scheme", "first_collision_load"),
        notes="averaged over repeats; collision = no candidate is usable",
    )
    sums = {name: 0.0 for name in SCHEMES}
    for repeat in range(scale.repeats):
        seed = scale.seed + repeat * 2003
        for scheme_name, factory in make_schemes(scale, seed=seed).items():
            table = factory()
            keys = key_stream(seed=seed ^ 0xAB1E)
            while table.events.first_collision_items is None:
                table.put(next(keys))
            sums[scheme_name] += table.events.first_collision_items / table.capacity
    for scheme_name in SCHEMES:
        result.add_row(
            scheme=scheme_name,
            first_collision_load=sums[scheme_name] / scale.repeats,
        )
    return result


def fig11_first_failure(
    scale: Scale = Scale(), maxloops: Sequence[int] = (50, 100, 200, 300, 400, 500)
) -> ExperimentResult:
    """Fig. 11: load ratio at the first insertion failure vs maxloop.

    Expected shape: failure load rises with maxloop for every scheme, and
    multi-copy schemes reach a given load with a smaller maxloop (or a
    higher failure-free load at the same maxloop).
    """
    result = ExperimentResult(
        "fig11",
        "Load ratio at first insertion failure vs maxloop",
        columns=("scheme", "maxloop", "first_failure_load"),
    )
    for maxloop in maxloops:
        sums = {name: 0.0 for name in SCHEMES}
        for repeat in range(scale.repeats):
            seed = scale.seed + repeat * 3001
            scaled = Scale(
                n_single=scale.n_single,
                d=scale.d,
                slots=scale.slots,
                maxloop=maxloop,
                repeats=scale.repeats,
                n_queries=scale.n_queries,
                seed=scale.seed,
                stash_buckets=scale.stash_buckets,
            )
            for scheme_name, factory in make_schemes(scaled, seed=seed).items():
                table = factory()
                keys = key_stream(seed=seed ^ 0xFA11)
                while table.events.first_failure_items is None:
                    table.put(next(keys))
                sums[scheme_name] += table.events.first_failure_items / table.capacity
        for scheme_name in SCHEMES:
            result.add_row(
                scheme=scheme_name,
                maxloop=maxloop,
                first_failure_load=sums[scheme_name] / scale.repeats,
            )
    return result


# ---------------------------------------------------------------------------
# Fig. 12 / Fig. 13 — lookup cost
# ---------------------------------------------------------------------------


def fig12_lookup_existing(
    scale: Scale = Scale(), sweep: Optional[Dict] = None
) -> ExperimentResult:
    """Fig. 12: off-chip accesses per lookup of existing items vs load.

    Expected shape: the multi-copy schemes read fewer buckets than their
    single-copy counterparts at every load (impossible buckets skipped,
    redundant copies found sooner).
    """
    result = ExperimentResult(
        "fig12",
        "Memory accesses per lookup (existing items)",
        columns=("scheme", "load", "offchip_accesses_per_lookup"),
    )
    for cell in _sorted_cells(_sweep(scale, sweep)):
        if not cell.lookup_existing.operations:
            continue
        result.add_row(
            scheme=cell.scheme,
            load=cell.load,
            offchip_accesses_per_lookup=cell.lookup_existing.offchip_accesses_per_op,
        )
    return result


def fig13_lookup_missing(
    scale: Scale = Scale(), sweep: Optional[Dict] = None
) -> ExperimentResult:
    """Fig. 13: off-chip accesses per lookup of non-existing items vs load.

    Expected shape: single-copy schemes always read all d buckets; the
    multi-copy schemes often answer from the counters alone (≈0 accesses at
    low/moderate load), with B-McCuckoo's advantage fading near full load.
    """
    result = ExperimentResult(
        "fig13",
        "Memory accesses per lookup (non-existing items)",
        columns=("scheme", "load", "offchip_accesses_per_lookup"),
    )
    for cell in _sorted_cells(_sweep(scale, sweep)):
        if not cell.lookup_missing.operations:
            continue
        result.add_row(
            scheme=cell.scheme,
            load=cell.load,
            offchip_accesses_per_lookup=cell.lookup_missing.offchip_accesses_per_op,
        )
    return result


# ---------------------------------------------------------------------------
# Fig. 14 — deletion cost
# ---------------------------------------------------------------------------


def fig14_deletion(
    scale: Scale = Scale(), loads: Sequence[float] = (0.3, 0.5, 0.7, 0.85)
) -> ExperimentResult:
    """Fig. 14: off-chip reads per deletion vs load.

    Expected shape: multi-copy schemes read *more* per deletion (all copies
    must be confirmed) but write zero (only counters are reset), whereas
    single-copy schemes always pay exactly one write.
    """
    result = ExperimentResult(
        "fig14",
        "Memory accesses per deletion",
        columns=("scheme", "load", "reads_per_delete", "writes_per_delete"),
        notes="multi-copy deletion writes are counter-only (0 off-chip writes)",
    )
    stats: Dict[Tuple[str, float], OpStats] = {}
    for repeat in range(scale.repeats):
        seed = scale.seed + repeat * 4001
        schemes = make_schemes(scale, seed=seed, deletion_mode=DeletionMode.RESET)
        for scheme_name, factory in schemes.items():
            for load in loads:
                table, inserted = fill_fresh(factory, load, seed=seed ^ 0xDE1E)
                if not inserted:
                    continue
                n_deletes = min(scale.n_queries, len(inserted))
                victims = sample_keys(inserted, n_deletes, seed=seed)
                merged = stats.setdefault((scheme_name, load), OpStats())
                merged.merge(measure_deletes(table, victims))
    for scheme_name in SCHEMES:
        for load in loads:
            merged = stats.get((scheme_name, load))
            if merged is None:
                continue
            result.add_row(
                scheme=scheme_name,
                load=load,
                reads_per_delete=merged.offchip_reads_per_op,
                writes_per_delete=merged.offchip_writes_per_op,
            )
    return result


# ---------------------------------------------------------------------------
# Tables II / III — stash behaviour at very high load
# ---------------------------------------------------------------------------


def _stash_experiment(
    experiment_id: str,
    title: str,
    factory_name: str,
    scale: Scale,
    loads: Sequence[float],
    maxloops: Sequence[int],
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id,
        title,
        columns=(
            "load",
            "maxloop",
            "stash_items",
            "stash_pct_of_items",
            "stash_visit_pct_missing_lookups",
        ),
    )
    for load in loads:
        for maxloop in maxloops:
            stash_items = 0.0
            stash_pct = 0.0
            visit_pct = 0.0
            for repeat in range(scale.repeats):
                seed = scale.seed + repeat * 5003
                scaled = Scale(
                    n_single=scale.n_single,
                    d=scale.d,
                    slots=scale.slots,
                    maxloop=maxloop,
                    repeats=scale.repeats,
                    n_queries=scale.n_queries,
                    seed=scale.seed,
                    stash_buckets=scale.stash_buckets,
                )
                factory = make_schemes(scaled, seed=seed)[factory_name]
                table, inserted = fill_fresh(factory, load, seed=seed ^ 0x57A5)
                stash = table.stash
                assert stash is not None
                stash_items += len(stash)
                if inserted:
                    stash_pct += len(stash) / len(table) * 100.0
                    absent = missing_keys(
                        scale.n_queries, set(inserted), seed=seed + 11
                    )
                    visits = sum(
                        1 for key in absent if table.lookup(key).checked_stash
                    )
                    visit_pct += visits / len(absent) * 100.0
            result.add_row(
                load=load,
                maxloop=maxloop,
                stash_items=stash_items / scale.repeats,
                stash_pct_of_items=stash_pct / scale.repeats,
                stash_visit_pct_missing_lookups=visit_pct / scale.repeats,
            )
    return result


def table2_stash_single(
    scale: Scale = Scale(),
    loads: Sequence[float] = (0.88, 0.89, 0.90, 0.91, 0.92, 0.93),
    maxloops: Sequence[int] = (200, 500),
) -> ExperimentResult:
    """Table II: stash statistics for 3-hash 1-slot McCuckoo at 88–93 % load.

    Expected shape: stash population ramps steeply over the last few load
    points (earlier with the smaller maxloop) while the fraction of
    non-existing-item lookups that actually visit the stash stays ≈0 %.
    """
    return _stash_experiment(
        "table2",
        "Stash performance, 3-hash 1-slot McCuckoo",
        "McCuckoo",
        scale,
        loads,
        maxloops,
    )


def table3_stash_blocked(
    scale: Scale = Scale(),
    loads: Sequence[float] = (0.975, 0.98, 0.985, 0.99, 0.995, 1.0),
    maxloops: Sequence[int] = (200, 500),
) -> ExperimentResult:
    """Table III: stash statistics for 3-hash 3-slot B-McCuckoo at 97.5–100 %.

    Expected shape: essentially empty stash until ~99 %, then a sharp ramp;
    stash-visit rate on non-existing lookups stays ≈0 %.
    """
    return _stash_experiment(
        "table3",
        "Stash performance, 3-hash 3-slot B-McCuckoo",
        "B-McCuckoo",
        scale,
        loads,
        maxloops,
    )


# ---------------------------------------------------------------------------
# Figs. 15 / 16 — FPGA latency and throughput model
# ---------------------------------------------------------------------------

RECORD_SIZES = (8, 16, 32, 64, 128)


def fig15_insert_latency(
    scale: Scale = Scale(),
    sweep: Optional[Dict] = None,
    record_sizes: Sequence[int] = RECORD_SIZES,
    model: LatencyModel = PAPER_FPGA,
) -> ExperimentResult:
    """Fig. 15: insertion latency vs load, and throughput vs record size at
    50 % load, on the paper's FPGA cost model.

    Expected shape: multi-copy insertion latency lower at moderate-to-high
    load (fewer expensive off-chip reads); throughput advantage grows with
    record size.
    """
    result = ExperimentResult(
        "fig15",
        "Insertion latency (us) vs load; throughput (Mops) vs record size",
        columns=("scheme", "load", "record_bytes", "latency_us", "throughput_mops"),
    )
    cells = _sweep(scale, sweep)
    for cell in _sorted_cells(cells):
        result.add_row(
            scheme=cell.scheme,
            load=cell.load,
            record_bytes=model.record_bytes,
            latency_us=model.latency_us(cell.insert),
            throughput_mops=model.throughput_mops(cell.insert),
        )
    for record_bytes in record_sizes:
        sized = model.with_record_bytes(record_bytes)
        for scheme_name in SCHEMES:
            cell = cells.get((scheme_name, 0.5))
            if cell is None:
                continue
            result.add_row(
                scheme=scheme_name,
                load=0.5,
                record_bytes=record_bytes,
                latency_us=sized.latency_us(cell.insert),
                throughput_mops=sized.throughput_mops(cell.insert),
            )
    return result


def fig16_lookup_latency(
    scale: Scale = Scale(),
    sweep: Optional[Dict] = None,
    record_sizes: Sequence[int] = RECORD_SIZES,
    model: LatencyModel = PAPER_FPGA,
) -> ExperimentResult:
    """Fig. 16: lookup latency and throughput for existing and non-existing
    items on the FPGA cost model.

    Expected shape: skipping buckets pays off more as records grow; for
    non-existing items the multi-copy schemes answer mostly on-chip.
    """
    result = ExperimentResult(
        "fig16",
        "Lookup latency (us) and throughput (Mops), existing/non-existing",
        columns=(
            "scheme",
            "load",
            "record_bytes",
            "population",
            "latency_us",
            "throughput_mops",
        ),
    )
    cells = _sweep(scale, sweep)
    for cell in _sorted_cells(cells):
        for population, stats in (
            ("existing", cell.lookup_existing),
            ("missing", cell.lookup_missing),
        ):
            if not stats.operations:
                continue
            result.add_row(
                scheme=cell.scheme,
                load=cell.load,
                record_bytes=model.record_bytes,
                population=population,
                latency_us=model.latency_us(stats),
                throughput_mops=model.throughput_mops(stats),
            )
    for record_bytes in record_sizes:
        sized = model.with_record_bytes(record_bytes)
        for scheme_name in SCHEMES:
            cell = cells.get((scheme_name, 0.5))
            if cell is None:
                continue
            for population, stats in (
                ("existing", cell.lookup_existing),
                ("missing", cell.lookup_missing),
            ):
                if not stats.operations:
                    continue
                result.add_row(
                    scheme=scheme_name,
                    load=0.5,
                    record_bytes=record_bytes,
                    population=population,
                    latency_us=sized.latency_us(stats),
                    throughput_mops=sized.throughput_mops(stats),
                )
    return result


# ---------------------------------------------------------------------------
# Ablations (design choices DESIGN.md calls out)
# ---------------------------------------------------------------------------


def ablation_sibling_tracking(
    scale: Scale = Scale(), loads: Sequence[float] = (0.5, 0.7, 0.85, 0.9)
) -> ExperimentResult:
    """READ vs METADATA sibling tracking: extra reads vs extra writes."""
    result = ExperimentResult(
        "ablation-sibling",
        "Sibling tracking: disambiguation reads vs metadata fix-up writes",
        columns=("mode", "load", "reads_per_insert", "writes_per_insert"),
    )
    for mode in (SiblingTracking.READ, SiblingTracking.METADATA):
        merged: Dict[float, OpStats] = {}
        for repeat in range(scale.repeats):
            seed = scale.seed + repeat * 6007
            table = McCuckoo(
                scale.n_single,
                d=scale.d,
                maxloop=scale.maxloop,
                seed=seed,
                sibling_tracking=mode,
                stash_buckets=scale.stash_buckets,
            )
            points = measured_fill(table, loads, key_stream(seed=seed ^ 0x51B))
            for point in points:
                merged.setdefault(point.load, OpStats()).merge(point.insert_stats)
        for load in loads:
            stats = merged.get(load)
            if stats is None:
                continue
            result.add_row(
                mode=mode.value,
                load=load,
                reads_per_insert=stats.offchip_reads_per_op,
                writes_per_insert=stats.offchip_writes_per_op,
            )
    return result


def ablation_kick_policy(
    scale: Scale = Scale(),
    loads: Sequence[float] = (0.7, 0.85, 0.9, 0.93, 0.95, 0.97),
) -> ExperimentResult:
    """Random-walk vs MinCounter vs bubbling victim selection in McCuckoo.

    Loads past ~0.92 exceed the d=3 cuckoo threshold: the main table
    saturates and the off-chip stash absorbs the overflow, so the high-load
    rows measure how much each policy spends *discovering* that an insert
    cannot land (random walk burns the full kick budget; bubbling's labels
    prove exhaustion early and give up cheaply).
    """
    result = ExperimentResult(
        "ablation-policy",
        "Kick policy: random-walk vs MinCounter vs bubbling",
        columns=("policy", "load", "kicks_per_insert"),
    )
    for policy_name, policy_factory in (
        ("random-walk", RandomWalkPolicy),
        ("mincounter", MinCounterPolicy),
        ("bubbling", BubblingPolicy),
    ):
        merged: Dict[float, OpStats] = {}
        for repeat in range(scale.repeats):
            seed = scale.seed + repeat * 7001
            table = McCuckoo(
                scale.n_single,
                d=scale.d,
                maxloop=scale.maxloop,
                seed=seed,
                kick_policy=policy_factory(),
                stash_buckets=scale.stash_buckets,
            )
            points = measured_fill(table, loads, key_stream(seed=seed ^ 0x91C))
            for point in points:
                merged.setdefault(point.load, OpStats()).merge(point.insert_stats)
        for load in loads:
            stats = merged.get(load)
            if stats is None:
                continue
            result.add_row(
                policy=policy_name, load=load, kicks_per_insert=stats.kicks_per_op
            )
    return result


def ablation_bubbling(
    scale: Scale = Scale(),
    loads: Sequence[float] = (0.9, 0.95, 0.97),
    frontier_buckets: Optional[int] = None,
) -> ExperimentResult:
    """Bubbling-up insertion: the max-fill frontier, and what it buys McCuckoo.

    The ``frontier`` section reproduces Kuszmaul's headline claim (arXiv
    2501.02312) on the single-copy baseline: at d=4 with a short kick budget
    (maxloop=80, no stash), bucket labels push the first-failure load past
    0.96 while a random walk gives out near 0.93.  The ``porat-shalem`` row
    is the self-increment label rule from arXiv 1104.5400 for comparison.

    The ``copies-load`` section measures the same policies inside McCuckoo,
    where failed walks fall into the off-chip stash instead of failing: at
    d=3 the threshold (~0.92) is below the sweep's high loads, so no policy
    moves the frontier and the stash eats the slack — labels only cut the
    kicks spent proving an insert is hopeless.  At d=4 the threshold
    (~0.977) is above 0.97 and the main table itself absorbs the load.
    """
    n_frontier = frontier_buckets if frontier_buckets else 4 * scale.n_single
    result = ExperimentResult(
        "ablation-bubbling",
        "Bubbling-up insertion: max-fill frontier and multi-copy interaction",
        columns=("section", "policy", "d", "load", "fill",
                 "kicks_per_insert", "stash_items"),
        notes=f"frontier: first-failure fill, single-copy d=4, "
              f"{n_frontier} buckets, maxloop=80; copies-load: McCuckoo "
              f"main-table fill and stash at each offered load",
    )
    for policy_name, make_kick_policy in (
        ("random-walk", lambda: None),
        ("mincounter", lambda: "mincounter"),
        ("bubbling", lambda: "bubbling"),
        ("porat-shalem", lambda: BubblingPolicy(variant="porat-shalem")),
    ):
        fill_sum = kicks_sum = 0.0
        for repeat in range(scale.repeats):
            seed = scale.seed + repeat * 17011
            table = CuckooTable(
                n_frontier,
                d=4,
                maxloop=80,
                seed=seed,
                on_failure=FailurePolicy.FAIL,
                kick_policy=make_kick_policy(),
            )
            keys = key_stream(seed=seed ^ 0xB0B)
            total_kicks = inserted = 0
            while True:
                outcome = table.put(next(keys))
                total_kicks += outcome.kicks
                if outcome.failed:
                    break
                inserted += 1
            fill_sum += inserted / table.capacity
            kicks_sum += total_kicks / max(1, inserted)
        result.add_row(
            section="frontier",
            policy=policy_name,
            d=4,
            load="",
            fill=round(fill_sum / scale.repeats, 4),
            kicks_per_insert=round(kicks_sum / scale.repeats, 4),
            stash_items="",
        )
    for d in (3, 4):
        for policy_name in ("random-walk", "bubbling"):
            fill_at: Dict[float, float] = {}
            kicks_at: Dict[float, float] = {}
            stash_at: Dict[float, float] = {}
            for repeat in range(scale.repeats):
                seed = scale.seed + repeat * 19013
                table = McCuckoo(
                    scale.n_single,
                    d=d,
                    maxloop=scale.maxloop,
                    seed=seed,
                    kick_policy=policy_name,
                    stash_buckets=scale.stash_buckets,
                )
                keys = key_stream(seed=seed ^ 0xB2B)
                for load in sorted(loads):
                    target = int(load * table.capacity)
                    band_kicks = band_inserts = 0
                    while len(table) < target:
                        outcome = table.put(next(keys))
                        band_kicks += outcome.kicks
                        band_inserts += 1
                    in_stash = (
                        len(table.stash) if table.stash is not None else 0
                    )
                    fill_at[load] = fill_at.get(load, 0.0) + (
                        (len(table) - in_stash) / table.capacity
                    )
                    kicks_at[load] = kicks_at.get(load, 0.0) + (
                        band_kicks / max(1, band_inserts)
                    )
                    stash_at[load] = stash_at.get(load, 0.0) + in_stash
            for load in sorted(loads):
                result.add_row(
                    section="copies-load",
                    policy=policy_name,
                    d=d,
                    load=load,
                    fill=round(fill_at[load] / scale.repeats, 4),
                    kicks_per_insert=round(kicks_at[load] / scale.repeats, 4),
                    stash_items=round(stash_at[load] / scale.repeats, 1),
                )
    return result


def ablation_deletion_mode(
    scale: Scale = Scale(), load: float = 0.6, delete_fraction: float = 0.3
) -> ExperimentResult:
    """RESET vs TOMBSTONE deletion: missing-lookup cost after churn.

    RESET disables the zero-counter absence proof, so non-existing lookups
    must probe buckets; TOMBSTONE keeps the proof sound at the price of
    tombstone scars that slowly erode selectivity.
    """
    result = ExperimentResult(
        "ablation-deletion",
        "Deletion mode: missing-lookup accesses after deleting a fraction",
        columns=("mode", "accesses_per_missing_lookup"),
    )
    for mode in (DeletionMode.RESET, DeletionMode.TOMBSTONE):
        merged = OpStats()
        for repeat in range(scale.repeats):
            seed = scale.seed + repeat * 8009
            table = McCuckoo(
                scale.n_single,
                d=scale.d,
                maxloop=scale.maxloop,
                seed=seed,
                deletion_mode=mode,
                stash_buckets=scale.stash_buckets,
            )
            keys = key_stream(seed=seed ^ 0xDE7)
            inserted: List[Key] = []
            target = int(load * table.capacity)
            while len(table) < target:
                key = next(keys)
                table.put(key)
                inserted.append(table._canonical(key))
            victims = sample_keys(
                inserted, int(delete_fraction * len(inserted)), seed=seed
            )
            for key in victims:
                table.delete(key)
            absent = missing_keys(scale.n_queries, set(inserted), seed=seed + 3)
            merged.merge(measure_lookups(table, absent))
        result.add_row(
            mode=mode.value,
            accesses_per_missing_lookup=merged.offchip_accesses_per_op,
        )
    return result


def ablation_stash_screen(
    scale: Scale = Scale(), load: float = 0.92
) -> ExperimentResult:
    """McCuckoo's screened off-chip stash vs CHS's always-checked stash.

    Measures what fraction of non-existing-item lookups reach the stash.
    """
    result = ExperimentResult(
        "ablation-stash",
        "Stash checking rate on non-existing lookups at high load",
        columns=("scheme", "stash_visit_pct"),
    )
    for scheme_name in ("McCuckoo", "CHS"):
        visit_pct = 0.0
        for repeat in range(scale.repeats):
            seed = scale.seed + repeat * 9001
            if scheme_name == "McCuckoo":
                table = McCuckoo(
                    scale.n_single,
                    d=scale.d,
                    maxloop=scale.maxloop,
                    seed=seed,
                    stash_buckets=scale.stash_buckets,
                )
            else:
                table = CHS(
                    scale.n_single,
                    d=scale.d,
                    maxloop=scale.maxloop,
                    seed=seed,
                    stash_capacity=max(4, scale.capacity),
                )
            keys = key_stream(seed=seed ^ 0x5C4)
            inserted: List[Key] = []
            target = int(load * table.capacity)
            while len(table) < target:
                key = next(keys)
                outcome = table.put(key)
                if not outcome.failed:
                    inserted.append(table._canonical(key))
            absent = missing_keys(scale.n_queries, set(inserted), seed=seed + 17)
            visits = sum(1 for key in absent if table.lookup(key).checked_stash)
            visit_pct += visits / len(absent) * 100.0
        result.add_row(scheme=scheme_name, stash_visit_pct=visit_pct / scale.repeats)
    return result


def ablation_path_insert(
    scale: Scale = Scale(), load: float = 0.88
) -> ExperimentResult:
    """Random-walk kicks vs path-ordered insertion (find the whole cuckoo
    path first, as §III.H prescribes for concurrency).

    BFS path search finds the *shortest* eviction chain, so it moves fewer
    items than the walk; the price is the search's own off-chip reads
    (each expansion must learn an occupant's key).
    """
    from ..concurrency import ConcurrentMcCuckoo

    result = ExperimentResult(
        "ablation-path",
        "Insertion at high load: random-walk vs path-ordered (BFS) kicks",
        columns=("strategy", "kicks_per_insert", "reads_per_insert",
                 "writes_per_insert"),
    )
    walk_stats, path_stats = OpStats(), OpStats()
    for repeat in range(scale.repeats):
        seed = scale.seed + repeat * 13009
        walk = McCuckoo(scale.n_single, d=3, maxloop=scale.maxloop, seed=seed,
                        stash_buckets=scale.stash_buckets)
        path = ConcurrentMcCuckoo(
            McCuckoo(scale.n_single, d=3, maxloop=scale.maxloop, seed=seed,
                     stash_buckets=scale.stash_buckets)
        )
        keys = key_stream(seed=seed ^ 0x9A7)
        target = int(load * walk.capacity)
        while len(walk) < target:
            key = next(keys)
            with walk.mem.measure() as measurement:
                outcome = walk.put(key)
            walk_stats.add(measurement.delta, kicks=outcome.kicks)
            with path.table.mem.measure() as measurement:
                outcome = path.insert(key)
            path_stats.add(measurement.delta, kicks=outcome.kicks)
    for strategy, stats in (("random-walk", walk_stats), ("path", path_stats)):
        result.add_row(
            strategy=strategy,
            kicks_per_insert=stats.kicks_per_op,
            reads_per_insert=stats.offchip_reads_per_op,
            writes_per_insert=stats.offchip_writes_per_op,
        )
    return result


def ablation_blocked_counter_screen(
    scale: Scale = Scale(),
    loads: Sequence[float] = (0.2, 0.5, 0.98),
    model: LatencyModel = PAPER_FPGA,
) -> ExperimentResult:
    """§IV.C's remark, quantified: at very high load the blocked table can
    "just do the lookup the old way" — the counter words cost on-chip time
    but barely skip any bucket once nearly every bucket is non-empty.

    Compares existing-item lookup latency (FPGA model) with the counter
    screen on vs off at moderate and near-full load.
    """
    result = ExperimentResult(
        "ablation-screen",
        "B-McCuckoo lookup: counter screen on vs off (modelled latency)",
        columns=("load", "screen", "latency_us_existing", "latency_us_missing"),
    )
    for load in loads:
        for screen in (True, False):
            existing_stats = OpStats()
            missing_stats = OpStats()
            for repeat in range(scale.repeats):
                seed = scale.seed + repeat * 12007
                table = BlockedMcCuckoo(
                    scale.n_blocked,
                    d=scale.d,
                    slots=scale.slots,
                    maxloop=scale.maxloop,
                    seed=seed,
                    lookup_counter_screen=screen,
                    stash_buckets=scale.stash_buckets,
                )
                keys = key_stream(seed=seed ^ 0x5CE)
                inserted: List[Key] = []
                target = int(load * table.capacity)
                while len(table) < target:
                    key = next(keys)
                    table.put(key)
                    inserted.append(table._canonical(key))
                n_queries = min(scale.n_queries, len(inserted))
                existing_stats.merge(
                    measure_lookups(table, sample_keys(inserted, n_queries, seed))
                )
                missing_stats.merge(
                    measure_lookups(
                        table, missing_keys(n_queries, set(inserted), seed + 9)
                    )
                )
            result.add_row(
                load=load,
                screen="on" if screen else "off",
                latency_us_existing=model.latency_us(existing_stats),
                latency_us_missing=model.latency_us(missing_stats),
            )
    return result


def ablation_d_sweep(
    scale: Scale = Scale(), ds: Sequence[int] = (2, 3, 4)
) -> ExperimentResult:
    """How the hash-function count d shapes McCuckoo.

    The paper fixes d=3 ("sufficient for most practical scenarios"); this
    ablation shows why: d=2 fails early (≈50 % threshold), d=4 buys little
    extra load for 2x the counter bits and an extra bucket per lookup.
    """
    result = ExperimentResult(
        "ablation-d",
        "McCuckoo vs d: first-failure load, counter bits, lookup cost",
        columns=(
            "d",
            "first_failure_load",
            "counter_bits",
            "missing_accesses_per_lookup",
        ),
    )
    for d in ds:
        failure_sum = 0.0
        lookup_stats = OpStats()
        counter_bits = 0
        for repeat in range(scale.repeats):
            seed = scale.seed + repeat * 11003
            table = McCuckoo(
                scale.n_single,
                d=d,
                maxloop=scale.maxloop,
                seed=seed,
                stash_buckets=scale.stash_buckets,
            )
            counter_bits = table._counters.bits
            keys = key_stream(seed=seed ^ 0xD5)
            inserted: List[Key] = []
            while table.events.first_failure_items is None:
                key = next(keys)
                table.put(key)
                inserted.append(table._canonical(key))
            failure_sum += table.events.first_failure_items / table.capacity
            absent = missing_keys(scale.n_queries, set(inserted), seed=seed + 5)
            lookup_stats.merge(measure_lookups(table, absent))
        result.add_row(
            d=d,
            first_failure_load=failure_sum / scale.repeats,
            counter_bits=counter_bits,
            missing_accesses_per_lookup=lookup_stats.offchip_accesses_per_op,
        )
    return result


def ablation_wear_policy(
    scale: Scale = Scale(), loads: Sequence[float] = (0.7, 0.85, 0.9)
) -> ExperimentResult:
    """Bucket write-wear under random-walk vs MinCounter vs wear-aware kicks.

    Eppstein et al. (arXiv 1404.0286) cast flash/NVM lifetime as
    minimizing the *maximum* per-bucket write count.  Every policy pays
    the same total writes for the same fill; the wear-aware policy only
    redistributes them, so the interesting columns are ``max_wear`` and
    ``wear_imbalance`` (max/mean — 1.0 is perfectly level).
    """
    result = ExperimentResult(
        "ablation-wear",
        "Kick policy wear: random-walk vs MinCounter vs wear-aware",
        columns=("policy", "load", "max_wear", "mean_wear",
                 "wear_imbalance", "kicks_per_insert"),
    )
    for policy_name, policy_factory in (
        ("random-walk", RandomWalkPolicy),
        ("mincounter", MinCounterPolicy),
        ("wear-aware", WearAwarePolicy),
    ):
        for load in loads:
            max_sum = mean_sum = imbalance_sum = kicks_sum = 0.0
            for repeat in range(scale.repeats):
                seed = scale.seed + repeat * 7001
                meter = WearMeter()
                table = McCuckoo(
                    scale.n_single,
                    d=scale.d,
                    maxloop=scale.maxloop,
                    seed=seed,
                    kick_policy=policy_factory(),
                    stash_buckets=scale.stash_buckets,
                    wear_meter=meter,
                )
                points = measured_fill(table, (load,),
                                       key_stream(seed=seed ^ 0x3EA4))
                max_sum += meter.max_wear
                mean_sum += meter.mean_wear
                imbalance_sum += meter.wear_imbalance
                kicks_sum += points[0].insert_stats.kicks_per_op
            result.add_row(
                policy=policy_name,
                load=load,
                max_wear=max_sum / scale.repeats,
                mean_wear=round(mean_sum / scale.repeats, 4),
                wear_imbalance=round(imbalance_sum / scale.repeats, 4),
                kicks_per_insert=round(kicks_sum / scale.repeats, 4),
            )
    return result


ALL_EXPERIMENTS = {
    "fig9": fig9_kickouts,
    "fig10": fig10_memaccess,
    "table1": table1_first_collision,
    "fig11": fig11_first_failure,
    "fig12": fig12_lookup_existing,
    "fig13": fig13_lookup_missing,
    "fig14": fig14_deletion,
    "table2": table2_stash_single,
    "table3": table3_stash_blocked,
    "fig15": fig15_insert_latency,
    "fig16": fig16_lookup_latency,
    "ablation-sibling": ablation_sibling_tracking,
    "ablation-policy": ablation_kick_policy,
    "ablation-bubbling": ablation_bubbling,
    "ablation-deletion": ablation_deletion_mode,
    "ablation-stash": ablation_stash_screen,
    "ablation-d": ablation_d_sweep,
    "ablation-screen": ablation_blocked_counter_screen,
    "ablation-path": ablation_path_insert,
    "ablation-wear": ablation_wear_policy,
}
