"""One-shot report generation: every exhibit, rendered to markdown.

``python -m repro report -o report.md`` (or :func:`generate_report`) runs
the complete evaluation — the shared load sweep, every table/figure
function, and the ablations — and writes a self-contained markdown report
with the result tables and terminal charts for the headline figures.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from .experiments import ALL_EXPERIMENTS, run_core_sweep
from .plots import chart_experiment
from .sweep import Scale
from .tables import ExperimentResult, to_markdown

SWEEP_BASED = {"fig9", "fig10", "fig12", "fig13", "fig15", "fig16"}

#: experiment id -> (x column, y column) for the chart rendering
CHARTED: Dict[str, tuple] = {
    "fig9": ("load", "kicks_per_insert"),
    "fig10": ("load", "reads_per_insert"),
    "fig12": ("load", "offchip_accesses_per_lookup"),
    "fig13": ("load", "offchip_accesses_per_lookup"),
}


def run_all(
    scale: Scale = Scale(), only: Optional[List[str]] = None
) -> Dict[str, ExperimentResult]:
    """Run the selected experiments (default: all) sharing one sweep."""
    selected = list(only) if only else list(ALL_EXPERIMENTS)
    unknown = [name for name in selected if name not in ALL_EXPERIMENTS]
    if unknown:
        raise ValueError(f"unknown experiments: {unknown}")
    sweep = (
        run_core_sweep(scale)
        if any(name in SWEEP_BASED for name in selected)
        else None
    )
    results: Dict[str, ExperimentResult] = {}
    for name in selected:
        function = ALL_EXPERIMENTS[name]
        if name in SWEEP_BASED:
            results[name] = function(scale, sweep=sweep)
        else:
            results[name] = function(scale)
    return results


def generate_report(
    scale: Scale = Scale(),
    only: Optional[List[str]] = None,
    include_charts: bool = True,
) -> str:
    """Produce the full markdown report as a string."""
    start = time.time()
    results = run_all(scale, only=only)
    elapsed = time.time() - start
    lines: List[str] = [
        "# Multi-copy Cuckoo Hashing — reproduction report",
        "",
        f"Scale: {scale.n_single} buckets/sub-table "
        f"(capacity {scale.capacity} items), {scale.repeats} repeats, "
        f"{scale.n_queries} queries per probe batch.",
        f"Generated in {elapsed:.1f}s by `repro.analysis.report`.",
        "",
    ]
    for name, result in results.items():
        lines.append(to_markdown(result))
        lines.append("")
        if include_charts and name in CHARTED:
            x_col, y_col = CHARTED[name]
            lines.append("```")
            lines.append(chart_experiment(result, x_col, y_col, height=12))
            lines.append("```")
            lines.append("")
    return "\n".join(lines)


def write_report(
    path: str,
    scale: Scale = Scale(),
    only: Optional[List[str]] = None,
    include_charts: bool = True,
) -> str:
    """Generate the report and write it to ``path``; returns the text."""
    text = generate_report(scale, only=only, include_charts=include_charts)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    return text
