"""Deterministic fault injection for the McCuckoo serving stack.

See :mod:`repro.faults.plan` for the rule grammar and the determinism
contract, and ``docs/faults.md`` for a walkthrough.
"""

from .plan import (
    FRAME_CORRUPT,
    FRAME_DROP,
    FRAME_OK,
    AppendFault,
    FaultPlan,
    FaultRule,
    FaultSpecError,
    InjectedCrash,
)

__all__ = [
    "AppendFault",
    "FRAME_CORRUPT",
    "FRAME_DROP",
    "FRAME_OK",
    "FaultPlan",
    "FaultRule",
    "FaultSpecError",
    "InjectedCrash",
]
