"""Deterministic, seed-driven fault injection for the serving stack.

A :class:`FaultPlan` is a list of :class:`FaultRule` objects plus a seed.
Components of the serve stack *consult* the plan at well-defined sites and
the plan answers "does a fault fire here?":

========================  ====================================================
site                      consulted by
========================  ====================================================
``append``                :class:`~repro.apps.kvstore.DurableValueLog` before
                          each record is persisted (the append **is** the
                          fsync boundary in this in-memory model)
``writer``                :class:`~repro.serve.server.McCuckooServer` once per
                          writer-loop iteration, per shard
``dispatch``              the server's write-submission path, per write op
``frame``                 :func:`~repro.serve.protocol.write_frame`, per
                          outgoing frame
``compaction``            :class:`~repro.maintenance.Compactor` before each
                          live record is copied into the fresh log segment
``checkpoint``            :class:`~repro.maintenance.Checkpointer` at the
                          checkpoint-write boundary
``maintenance_kill``      the worker serve path, once per compaction record
                          and once mid-checkpoint-write, for the
                          ``kill_worker_during`` rule
``publish``               :class:`~repro.serve.shared_image.ShardImagePublisher`
                          mid-write, while the region's seqlock version is
                          odd, for the ``stall_publisher`` rule
========================  ====================================================

Determinism contract: every rule owns a private ``random.Random`` seeded
from ``(plan seed, rule index)``, and counter-triggered rules depend only
on how many times their site has been consulted.  Given the same seed and
the same sequence of consults, the fault schedule is identical — which is
what lets a failing run be replayed from its printed seed.

Rule grammar (``FaultPlan.parse``) — rules separated by ``;`` or ``,``:

``crash_after_appends=N[@SHARD]``
    The N-th append (1-based, optionally counting only shard SHARD)
    completes, then the store raises :class:`InjectedCrash`.  The record
    *is* persisted; the write is never acknowledged.
``torn_write=N[:KEEP][@SHARD]``
    The N-th append persists only the first KEEP bytes of the serialized
    record (default: half) and raises :class:`InjectedCrash` — a crash
    mid-write, leaving a torn tail for recovery to truncate.
``delay_shard=SHARD:SECONDS[:EVERY]``
    Shard SHARD's writer loop sleeps SECONDS before each EVERY-th run it
    processes (default every run).  Models a slow / partitioned shard.
``stall_publisher=SHARD:SECONDS[:EVERY]``
    Every EVERY-th shared-image publish of shard SHARD stalls SECONDS
    *mid-write*: the region's seqlock version is odd and its payload
    half-applied for the whole window.  Frontend readers must retry and
    fall back to the ring transport — the audit proves no reader ever
    accepts the half-applied image.
``busy=P``
    Each write dispatch is rejected with a BUSY error frame with
    probability P, regardless of actual queue depth.
``drop_connection=P``
    Each outgoing frame is dropped with probability P and the connection
    is severed (the peer sees EOF mid-conversation).
``corrupt_frame=P``
    Each outgoing frame has one body byte flipped with probability P.
    Framing (the length prefix) is preserved so the peer reads a complete
    but undecodable body — a clean decode error, not a hang.
``kill_worker=N[@WORKER]``
    The N-th applied write (1-based, optionally counting only ops applied
    by worker process WORKER) is persisted and applied, then the whole
    worker process dies via ``os._exit`` *before* the ack is sent.  The
    supervisor must restart the worker from its durable log; the write is
    never acknowledged but may legally survive.  Consulted at the
    ``worker_op`` site by :mod:`repro.serve.workers`.
``crash_during_compaction=N[@SHARD]``
    The N-th record-copy boundary inside a compaction raises
    :class:`InjectedCrash` *before* the commit swap, so the old log image
    stays authoritative and recovery sees the pre-compaction state.
``torn_checkpoint=N[:KEEP][@SHARD]``
    The N-th checkpoint write persists only the first KEEP bytes of the
    checkpoint artifact (default: half) and raises :class:`InjectedCrash`;
    recovery must detect the torn artifact via its CRC and fall back to a
    full log replay.
``kill_worker_during=SITE:N[@WORKER]``
    SITE is ``compaction``, ``checkpoint``, or ``migration``.  The N-th
    consult of that maintenance boundary in worker WORKER kills the whole
    worker process via ``os._exit`` — mid-compaction (old log file intact
    on disk), mid-checkpoint-write (torn checkpoint file on disk), or at
    a live-resharding phase boundary (the migration coordinator must
    abort or complete without losing an acknowledged write).  The
    supervisor restarts the worker from its durable files.  Migration
    phases consult in a fixed order per role (source: snapshot, delta,
    fence, delta, release; target: install, apply, apply, activate), so
    N selects a deterministic phase boundary to die at.

Example spec::

    crash_after_appends=200; torn_write=450; corrupt_frame=0.01; busy=0.02
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import ReproError


class FaultSpecError(ReproError):
    """A fault-plan spec string could not be parsed."""


class InjectedCrash(ReproError):
    """An injected crash at an append/fsync boundary.

    The raising store must be treated as dead: its in-memory index may be
    ahead of its durable log.  Recover a fresh store from the log bytes
    (:meth:`LogStructuredStore.recover_from_bytes`) instead of continuing.
    """


#: frame-site verdicts
FRAME_OK = "ok"
FRAME_DROP = "drop"
FRAME_CORRUPT = "corrupt"


@dataclass
class AppendFault:
    """What an ``append`` consult decided."""

    crash: bool = False
    torn: bool = False
    keep_bytes: Optional[int] = None  # None = tear at the record midpoint


class FaultRule:
    """One parsed rule; subclass-free — behaviour keyed on ``kind``."""

    KINDS = (
        "crash_after_appends",
        "torn_write",
        "delay_shard",
        "busy",
        "drop_connection",
        "corrupt_frame",
        "kill_worker",
        "crash_during_compaction",
        "torn_checkpoint",
        "kill_worker_during",
        "stall_publisher",
    )

    #: valid SITE values for ``kill_worker_during``
    MAINTENANCE_SITES = ("compaction", "checkpoint", "migration")

    def __init__(
        self,
        kind: str,
        *,
        count: int = 0,
        keep_bytes: Optional[int] = None,
        shard: Optional[int] = None,
        seconds: float = 0.0,
        every: int = 1,
        probability: float = 0.0,
        site: Optional[str] = None,
    ) -> None:
        if kind not in self.KINDS:
            raise FaultSpecError(f"unknown fault rule {kind!r}")
        self.kind = kind
        self.count = count
        self.keep_bytes = keep_bytes
        self.shard = shard
        self.seconds = seconds
        self.every = max(1, every)
        self.probability = probability
        self.site = site
        self._seen = 0  # consults relevant to this rule
        self._spent = False  # one-shot rules fire once
        self._rng = random.Random()  # reseeded by the plan

    # ------------------------------------------------------------------

    def bind(self, plan_seed: int, index: int) -> "FaultRule":
        """Give the rule its private deterministic RNG."""
        self._rng = random.Random((plan_seed * 0x9E3779B1 + index) & 0xFFFFFFFF)
        return self

    def reset(self) -> None:
        self._seen = 0
        self._spent = False

    def describe(self) -> str:
        if self.kind in ("crash_after_appends", "torn_write"):
            at = f"@{self.shard}" if self.shard is not None else ""
            keep = f":{self.keep_bytes}" if self.keep_bytes is not None else ""
            return f"{self.kind}={self.count}{keep}{at}"
        if self.kind == "kill_worker":
            # ``shard`` doubles as the worker scope for this rule.
            at = f"@{self.shard}" if self.shard is not None else ""
            return f"kill_worker={self.count}{at}"
        if self.kind == "crash_during_compaction":
            at = f"@{self.shard}" if self.shard is not None else ""
            return f"crash_during_compaction={self.count}{at}"
        if self.kind == "torn_checkpoint":
            at = f"@{self.shard}" if self.shard is not None else ""
            keep = f":{self.keep_bytes}" if self.keep_bytes is not None else ""
            return f"torn_checkpoint={self.count}{keep}{at}"
        if self.kind == "kill_worker_during":
            # ``shard`` doubles as the worker scope for this rule.
            at = f"@{self.shard}" if self.shard is not None else ""
            return f"kill_worker_during={self.site}:{self.count}{at}"
        if self.kind in ("delay_shard", "stall_publisher"):
            return f"{self.kind}={self.shard}:{self.seconds}:{self.every}"
        return f"{self.kind}={self.probability}"

    # ------------------------------------------------------------------
    # site evaluators (return None when the rule does not fire)
    # ------------------------------------------------------------------

    def on_append(self, shard: int) -> Optional[AppendFault]:
        if self.kind not in ("crash_after_appends", "torn_write") or self._spent:
            return None
        if self.shard is not None and shard != self.shard:
            return None
        self._seen += 1
        if self._seen < self.count:
            return None
        self._spent = True
        if self.kind == "crash_after_appends":
            return AppendFault(crash=True)
        return AppendFault(crash=True, torn=True, keep_bytes=self.keep_bytes)

    def on_worker_op(self, worker_id: int) -> bool:
        """One-shot kill trigger, consulted once per applied worker write."""
        if self.kind != "kill_worker" or self._spent:
            return False
        if self.shard is not None and worker_id != self.shard:
            return False
        self._seen += 1
        if self._seen < self.count:
            return False
        self._spent = True
        return True

    def on_compaction(self, shard: int) -> bool:
        """One-shot crash trigger, consulted per compaction record copy."""
        if self.kind != "crash_during_compaction" or self._spent:
            return False
        if self.shard is not None and shard != self.shard:
            return False
        self._seen += 1
        if self._seen < self.count:
            return False
        self._spent = True
        return True

    def on_checkpoint(self, shard: int) -> Optional[AppendFault]:
        """One-shot torn-artifact trigger, consulted per checkpoint write."""
        if self.kind != "torn_checkpoint" or self._spent:
            return None
        if self.shard is not None and shard != self.shard:
            return None
        self._seen += 1
        if self._seen < self.count:
            return None
        self._spent = True
        return AppendFault(crash=True, torn=True, keep_bytes=self.keep_bytes)

    def on_maintenance_kill(self, site: str, worker_id: int) -> bool:
        """One-shot worker-kill trigger at a maintenance boundary."""
        if self.kind != "kill_worker_during" or self._spent:
            return False
        if site != self.site:
            return False
        if self.shard is not None and worker_id != self.shard:
            return False
        self._seen += 1
        if self._seen < self.count:
            return False
        self._spent = True
        return True

    def on_writer(self, shard: int) -> float:
        if self.kind != "delay_shard" or shard != self.shard:
            return 0.0
        self._seen += 1
        return self.seconds if self._seen % self.every == 0 else 0.0

    def on_publish(self, shard: int) -> float:
        """Recurring mid-publish stall, consulted per shared-image publish."""
        if self.kind != "stall_publisher" or shard != self.shard:
            return 0.0
        self._seen += 1
        return self.seconds if self._seen % self.every == 0 else 0.0

    def on_dispatch(self) -> bool:
        if self.kind != "busy":
            return False
        return self._rng.random() < self.probability

    def on_frame(self) -> str:
        if self.kind == "drop_connection":
            if self._rng.random() < self.probability:
                return FRAME_DROP
        elif self.kind == "corrupt_frame":
            if self._rng.random() < self.probability:
                return FRAME_CORRUPT
        return FRAME_OK

    def corrupt_offset(self, body_len: int) -> Tuple[int, int]:
        """(byte offset within the body, xor mask) for a corruption hit."""
        offset = self._rng.randrange(body_len) if body_len else 0
        mask = self._rng.randrange(1, 256)
        return offset, mask


class FaultPlan:
    """A seeded set of fault rules plus fired-fault accounting."""

    def __init__(self, rules: Sequence[FaultRule] = (), seed: int = 0) -> None:
        self.seed = seed
        self.rules: List[FaultRule] = [
            rule.bind(seed, index) for index, rule in enumerate(rules)
        ]
        self.fired: Dict[str, int] = {}
        self._armed = True

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse a spec string (see module docstring for the grammar)."""
        rules: List[FaultRule] = []
        for chunk in spec.replace(",", ";").split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            rules.append(_parse_rule(chunk))
        if not rules:
            raise FaultSpecError(f"no rules in fault spec {spec!r}")
        return cls(rules, seed=seed)

    def describe(self) -> str:
        inner = "; ".join(rule.describe() for rule in self.rules)
        return f"FaultPlan(seed={self.seed}, rules=[{inner}])"

    def spec(self) -> str:
        """The plan's rules as a spec string ``parse`` accepts — the shape
        shipped to worker processes so each can rebuild the plan locally."""
        return "; ".join(rule.describe() for rule in self.rules)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def disarm(self) -> None:
        """Stop injecting (used for a post-run verification phase)."""
        self._armed = False

    def arm(self) -> None:
        self._armed = True

    @property
    def armed(self) -> bool:
        return self._armed

    def reset(self) -> None:
        """Rewind all counters/one-shots and re-derive every rule's RNG."""
        self.fired.clear()
        for index, rule in enumerate(self.rules):
            rule.reset()
            rule.bind(self.seed, index)
        self._armed = True

    def _note(self, name: str) -> None:
        self.fired[name] = self.fired.get(name, 0) + 1

    def fired_counts(self) -> Dict[str, int]:
        return dict(self.fired)

    # ------------------------------------------------------------------
    # consult sites
    # ------------------------------------------------------------------

    def on_append(self, shard: int = 0) -> Optional[AppendFault]:
        """Consulted by the durable log right before persisting a record."""
        if not self._armed:
            return None
        for rule in self.rules:
            fault = rule.on_append(shard)
            if fault is not None:
                self._note("torn_write" if fault.torn else "crash")
                return fault
        return None

    def writer_delay(self, shard: int) -> float:
        """Seconds the shard's writer loop should stall this iteration."""
        if not self._armed:
            return 0.0
        delay = 0.0
        for rule in self.rules:
            fired = rule.on_writer(shard)
            if fired:
                self._note("delay")
                delay += fired
        return delay

    def publish_stall(self, shard: int) -> float:
        """Seconds the shared-image publisher must hold the region in its
        half-applied state (seqlock version odd) before completing the
        write.  Consulted mid-publish by
        :class:`~repro.serve.shared_image.ShardImagePublisher`."""
        if not self._armed:
            return 0.0
        delay = 0.0
        for rule in self.rules:
            fired = rule.on_publish(shard)
            if fired:
                self._note("stall_publisher")
                delay += fired
        return delay

    def should_kill_worker(self, worker_id: int) -> bool:
        """Consulted once per applied worker write, after the write is
        persisted and applied but before its ack frame is sent."""
        if not self._armed:
            return False
        for rule in self.rules:
            if rule.on_worker_op(worker_id):
                self._note("kill_worker")
                return True
        return False

    def on_compaction_record(self, shard: int = 0) -> bool:
        """Consulted by the compactor before each live record is copied.

        True means "crash here": the compactor must abandon the in-progress
        segment and raise :class:`InjectedCrash` *without* committing, so
        the old log image stays authoritative.
        """
        if not self._armed:
            return False
        for rule in self.rules:
            if rule.on_compaction(shard):
                self._note("crash_during_compaction")
                return True
        return False

    def on_checkpoint_write(self, shard: int = 0) -> Optional[AppendFault]:
        """Consulted by the checkpointer right before a checkpoint persists.

        A returned fault means the artifact is torn at ``keep_bytes``
        (default: its midpoint) and :class:`InjectedCrash` is raised; the
        torn artifact must fail CRC validation at recovery time.
        """
        if not self._armed:
            return None
        for rule in self.rules:
            fault = rule.on_checkpoint(shard)
            if fault is not None:
                self._note("torn_checkpoint")
                return fault
        return None

    def should_kill_maintenance(self, site: str, worker_id: int = 0) -> bool:
        """Consulted at worker maintenance boundaries (``site`` is
        ``compaction``, ``checkpoint``, or ``migration``); True kills the
        worker process."""
        if not self._armed:
            return False
        for rule in self.rules:
            if rule.on_maintenance_kill(site, worker_id):
                self._note("kill_worker_during")
                return True
        return False

    def should_reject_busy(self) -> bool:
        """Consulted per write dispatch; True forces a BUSY error frame."""
        if not self._armed:
            return False
        for rule in self.rules:
            if rule.on_dispatch():
                self._note("busy")
                return True
        return False

    def on_frame_send(self, body: bytes) -> Tuple[str, bytes]:
        """Consulted per outgoing frame.

        Returns ``(verdict, body)`` where verdict is one of
        :data:`FRAME_OK` / :data:`FRAME_DROP` / :data:`FRAME_CORRUPT`;
        for a corruption the returned body has one byte flipped.
        """
        if not self._armed:
            return FRAME_OK, body
        for rule in self.rules:
            verdict = rule.on_frame()
            if verdict == FRAME_DROP:
                self._note("drop_connection")
                return FRAME_DROP, body
            if verdict == FRAME_CORRUPT:
                self._note("corrupt_frame")
                offset, mask = rule.corrupt_offset(len(body))
                if not body:
                    return FRAME_OK, body
                mutated = bytearray(body)
                mutated[offset] ^= mask
                return FRAME_CORRUPT, bytes(mutated)
        return FRAME_OK, body


def _parse_rule(chunk: str) -> FaultRule:
    if "=" not in chunk:
        raise FaultSpecError(f"rule {chunk!r} is missing '=<args>'")
    name, args = chunk.split("=", 1)
    name = name.strip()
    args = args.strip()
    shard: Optional[int] = None
    if "@" in args:
        args, shard_text = args.rsplit("@", 1)
        shard = _int(shard_text, chunk)
    parts = [part for part in args.split(":") if part != ""]
    try:
        if name == "crash_after_appends":
            return FaultRule(name, count=_positive(_int(parts[0], chunk), chunk),
                             shard=shard)
        if name == "torn_write":
            keep = _int(parts[1], chunk) if len(parts) > 1 else None
            return FaultRule(name, count=_positive(_int(parts[0], chunk), chunk),
                             keep_bytes=keep, shard=shard)
        if name == "kill_worker":
            # ``@WORKER`` rides the generic ``@`` suffix into ``shard``.
            return FaultRule(name, count=_positive(_int(parts[0], chunk), chunk),
                             shard=shard)
        if name == "crash_during_compaction":
            return FaultRule(name, count=_positive(_int(parts[0], chunk), chunk),
                             shard=shard)
        if name == "torn_checkpoint":
            keep = _int(parts[1], chunk) if len(parts) > 1 else None
            return FaultRule(name, count=_positive(_int(parts[0], chunk), chunk),
                             keep_bytes=keep, shard=shard)
        if name == "kill_worker_during":
            if len(parts) < 2:
                raise FaultSpecError(f"rule {chunk!r} needs SITE:N[@WORKER]")
            site = parts[0].strip()
            if site not in FaultRule.MAINTENANCE_SITES:
                raise FaultSpecError(
                    f"rule {chunk!r}: site must be one of "
                    f"{list(FaultRule.MAINTENANCE_SITES)}"
                )
            # ``@WORKER`` rides the generic ``@`` suffix into ``shard``.
            return FaultRule(name, site=site,
                             count=_positive(_int(parts[1], chunk), chunk),
                             shard=shard)
        if name in ("delay_shard", "stall_publisher"):
            if len(parts) < 2:
                raise FaultSpecError(
                    f"rule {chunk!r} needs SHARD:SECONDS[:EVERY]"
                )
            every = _int(parts[2], chunk) if len(parts) > 2 else 1
            return FaultRule(name, shard=_int(parts[0], chunk),
                             seconds=float(parts[1]), every=every)
        if name in ("busy", "drop_connection", "corrupt_frame"):
            probability = float(parts[0])
            if not 0.0 <= probability <= 1.0:
                raise FaultSpecError(
                    f"rule {chunk!r}: probability must be in [0, 1]"
                )
            return FaultRule(name, probability=probability)
    except (IndexError, ValueError) as error:
        raise FaultSpecError(f"cannot parse rule {chunk!r}: {error}") from error
    raise FaultSpecError(f"unknown fault rule {name!r}")


def _int(text: str, chunk: str) -> int:
    try:
        return int(text)
    except ValueError as error:
        raise FaultSpecError(f"rule {chunk!r}: {text!r} is not an integer") from error


def _positive(value: int, chunk: str) -> int:
    if value <= 0:
        raise FaultSpecError(f"rule {chunk!r}: count must be positive")
    return value


__all__ = [
    "AppendFault",
    "FRAME_CORRUPT",
    "FRAME_DROP",
    "FRAME_OK",
    "FaultPlan",
    "FaultRule",
    "FaultSpecError",
    "InjectedCrash",
]
