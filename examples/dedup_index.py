#!/usr/bin/env python3
"""Inline-deduplication fingerprint index (a ChunkStash-style workload).

Storage deduplication keeps a hash table from chunk fingerprint to on-disk
location.  The index is far too big for on-chip memory, lives in DRAM/flash
(off-chip), and is queried for *every* incoming chunk — most of which are
new, i.e. miss.  That is exactly the regime the paper targets: lookups for
non-existing items dominate and each off-chip probe is expensive.

This example streams a chunk workload with a configurable duplicate ratio
through a B-McCuckoo index at ~95 % load and reports how many off-chip
accesses per chunk the counters saved compared to a BCHT baseline.

Run:  python examples/dedup_index.py
"""

import random

from repro import BCHT, BlockedMcCuckoo, FailurePolicy
from repro.workloads import distinct_keys


def run_index(index, fingerprints, duplicate_ratio: float, seed: int) -> dict:
    rng = random.Random(seed)
    stored = []
    duplicates_found = 0
    new_chunks = 0
    lookup_reads_start = index.mem.off_chip.reads
    for fingerprint in fingerprints:
        # Every incoming chunk first queries the index.
        if stored and rng.random() < duplicate_ratio:
            probe = stored[rng.randrange(len(stored))]
            outcome = index.lookup(probe)
            assert outcome.found, "a stored fingerprint must be found"
            duplicates_found += 1
        else:
            outcome = index.lookup(fingerprint)
            assert not outcome.found
            result = index.put(fingerprint, value=("disk", len(stored)))
            if not result.failed:
                stored.append(fingerprint)
            new_chunks += 1
    return {
        "chunks": len(fingerprints),
        "duplicates": duplicates_found,
        "new": new_chunks,
        "load": index.load_ratio,
        "offchip_reads": index.mem.off_chip.reads - lookup_reads_start,
        "offchip_writes": index.mem.off_chip.writes,
        "onchip_reads": index.mem.on_chip.reads,
    }


def main() -> None:
    n_buckets = 1200  # per sub-table: capacity = 3 * 1200 * 3 slots = 10800
    n_chunks = 10000
    duplicate_ratio = 0.25
    fingerprints = distinct_keys(n_chunks, seed=11)

    mccuckoo = BlockedMcCuckoo(n_buckets, d=3, slots=3, maxloop=500, seed=3)
    bcht = BCHT(n_buckets, d=3, slots=3, maxloop=500, seed=3,
                on_failure=FailurePolicy.FAIL)

    print("streaming chunk fingerprints through both indexes ...\n")
    for name, index in (("B-McCuckoo", mccuckoo), ("BCHT", bcht)):
        stats = run_index(index, fingerprints, duplicate_ratio, seed=5)
        per_chunk = stats["offchip_reads"] / stats["chunks"]
        print(f"{name}:")
        print(f"  final load ratio:        {stats['load']:.2%}")
        print(f"  duplicate hits:          {stats['duplicates']}")
        print(f"  off-chip reads/chunk:    {per_chunk:.3f}")
        print(f"  off-chip writes total:   {stats['offchip_writes']}")
        print(f"  on-chip reads total:     {stats['onchip_reads']}\n")

    print("B-McCuckoo answers most 'new chunk?' queries from the on-chip")
    print("counters, so the expensive flash/DRAM index is rarely touched;")
    print("BCHT must read candidate buckets for every incoming chunk.")


if __name__ == "__main__":
    main()
