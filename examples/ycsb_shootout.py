#!/usr/bin/env python3
"""YCSB shoot-out: all four schemes across the standard cloud-serving mixes.

Loads each scheme with the same record set, replays YCSB workloads A-F
(minus the scan-based E), and reports off-chip accesses per operation —
the metric that dominates latency when the table lives in DRAM/flash.
Finishes with an AMAC-style batched read pass showing that McCuckoo's
counter screening *composes* with memory-level parallelism.

Run:  python examples/ycsb_shootout.py
"""

from repro import DeletionMode, batched_lookup
from repro.analysis import Scale
from repro.analysis.sweep import make_schemes
from repro.workloads import MIXES, YCSBConfig, YCSBWorkload, replay, sample_keys


def main() -> None:
    scale = Scale(n_single=1000, repeats=1)
    n_records = int(scale.capacity * 0.75)

    print(f"{'mix':4s} {'scheme':12s} {'ops':>6s} {'offchip/op':>11s} "
          f"{'stash checks':>13s}")
    print("-" * 52)
    for mix in sorted(MIXES):
        for scheme_name, factory in make_schemes(
            scale, seed=3, deletion_mode=DeletionMode.RESET
        ).items():
            table = factory()
            workload = YCSBWorkload(
                YCSBConfig(mix, n_records=n_records, n_ops=4000, seed=5)
            )
            replay(table, workload.load_phase(), check=False)
            before = table.mem.off_chip.total
            stats = replay(table, workload.run_phase(), check=False)
            ops = stats.inserts + stats.lookups + stats.updates + stats.deletes
            per_op = (table.mem.off_chip.total - before) / ops
            print(f"{mix:4s} {scheme_name:12s} {ops:>6d} {per_op:>11.3f} "
                  f"{stats.stash_checks:>13d}")
        print()

    # AMAC composition: batched reads on the two stepwise-capable schemes
    print("AMAC-style batched reads (workload C, depth 8):")
    for scheme_name in ("Cuckoo", "McCuckoo"):
        table = make_schemes(scale, seed=3)[scheme_name]()
        workload = YCSBWorkload(YCSBConfig("C", n_records=n_records, seed=5))
        replay(table, workload.load_phase(), check=False)
        probes = sample_keys(workload.records, 2000, seed=7)
        batch = batched_lookup(table, probes, depth=8)
        print(f"  {scheme_name:10s} epochs={batch.epochs:5d} "
              f"reads={batch.total_steps:5d} "
              f"overlap={batch.overlap_factor:.2f}x "
              f"hits={batch.hits}")
    print("\nMcCuckoo needs fewer reads AND fewer pipeline epochs: the")
    print("counter screen and memory-level parallelism stack.")


if __name__ == "__main__":
    main()
