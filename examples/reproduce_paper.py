#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation (§IV).

Prints each exhibit as a text table.  Pass ``--scale N`` to change the
per-sub-table bucket count (default 2000 → capacity 6000 items) and
``--only fig9,table2`` to run a subset.

Run:  python examples/reproduce_paper.py [--scale 2000] [--only fig9,fig10]
"""

import argparse
import time

from repro.analysis import ALL_EXPERIMENTS, Scale, render, run_core_sweep

SWEEP_BASED = {"fig9", "fig10", "fig12", "fig13", "fig15", "fig16"}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=2000,
                        help="buckets per sub-table for single-slot schemes")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--only", type=str, default="",
                        help="comma-separated experiment ids (default: all)")
    args = parser.parse_args()

    scale = Scale(n_single=args.scale, repeats=args.repeats)
    selected = (
        [name.strip() for name in args.only.split(",") if name.strip()]
        if args.only
        else list(ALL_EXPERIMENTS)
    )
    unknown = [name for name in selected if name not in ALL_EXPERIMENTS]
    if unknown:
        raise SystemExit(f"unknown experiments: {unknown}; "
                         f"options: {sorted(ALL_EXPERIMENTS)}")

    sweep = None
    if any(name in SWEEP_BASED for name in selected):
        print("running the shared load sweep (all four schemes) ...")
        start = time.time()
        sweep = run_core_sweep(scale)
        print(f"sweep finished in {time.time() - start:.1f}s\n")

    for name in selected:
        function = ALL_EXPERIMENTS[name]
        start = time.time()
        if name in SWEEP_BASED:
            result = function(scale, sweep=sweep)
        else:
            result = function(scale)
        print(render(result))
        print(f"[{name} took {time.time() - start:.1f}s]\n")


if __name__ == "__main__":
    main()
