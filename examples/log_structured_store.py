#!/usr/bin/env python3
"""A SILT-style log-structured store: McCuckoo as the in-memory index.

Values live in an append-only log (flash/disk in a real system); the index
maps keys to log offsets and must be compact and fast — the exact role the
paper designs McCuckoo for.  The demo runs a realistic lifecycle: bulk
load, skewed reads, updates creating garbage, compaction, a crash, and
log-replay recovery.

Run:  python examples/log_structured_store.py
"""

from repro.apps import LogStructuredStore
from repro.workloads import ZipfSampler, distinct_keys, missing_keys


def main() -> None:
    # start small: the index grows online (a few buckets per write) as the
    # store fills, so no insert ever stalls on a rehash
    store = LogStructuredStore(expected_items=1500, seed=31)
    keys = distinct_keys(4000, seed=32)

    print("bulk-loading 4000 records ...")
    for position, key in enumerate(keys):
        store.put(key, f"blob-{position}")
    print(f"  live records: {len(store)}, log records: {store.log_records}")
    print("  index generations (online growth rounds): "
          f"{store.index.generations}")

    # skewed read traffic
    sampler = ZipfSampler(len(keys), s=1.0, seed=33)
    reads = 20000
    before = store.mem.off_chip.reads
    for _ in range(reads):
        assert store.get(keys[sampler.sample()]) is not None
    print(f"\nserved {reads} zipf reads at "
          f"{(store.mem.off_chip.reads - before) / reads:.2f} "
          "off-chip reads each (index + value log)")

    # negative lookups: mostly screened by the on-chip counters
    absent = missing_keys(2000, set(keys), seed=34)
    before = store.mem.off_chip.reads
    for key in absent:
        assert store.get(key) is None
    print("2000 missing gets cost "
          f"{(store.mem.off_chip.reads - before) / 2000:.2f} "
          "off-chip reads each (counters skip impossible buckets; the "
          "blind baseline would pay 3.0)")

    # churn: rewrite half, delete a quarter -> garbage accumulates
    for key in keys[:2000]:
        store.put(key, "fresh")
    for key in keys[2000:3000]:
        store.delete(key)
    print(f"\nafter churn: garbage ratio {store.garbage_ratio:.1%} "
          f"({store.log_records} log records, {len(store)} live)")
    dropped = store.compact()
    print(f"compaction dropped {dropped} dead records "
          f"(garbage now {store.garbage_ratio:.0%})")

    # crash: the index is volatile; replay the log
    recovered = store.recover()
    print(f"\nrecovery replayed the log: {len(recovered)} records restored")
    assert len(recovered) == len(store)
    assert recovered.get(keys[0]) == "fresh"
    assert recovered.get(keys[2500], "gone") == "gone"
    print("recovered store agrees with the pre-crash state")


if __name__ == "__main__":
    main()
