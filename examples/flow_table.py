#!/usr/bin/env python3
"""Packet-forwarding flow table with one writer and many readers.

Switches (CuckooSwitch, MemC3) keep flow → action tables that are read for
every packet while a control plane occasionally installs new flows.  §III.H
of the paper notes McCuckoo's fast cuckoo-path discovery makes MemC3-style
one-writer-many-readers concurrency cheap.

This example installs flows through the path-ordered concurrent writer
while reader probes run at every atomic step boundary, and verifies no
lookup ever misses an installed flow — then serves a Zipf packet stream.

Run:  python examples/flow_table.py
"""

from repro import ConcurrentMcCuckoo, McCuckoo
from repro.concurrency import InterleavingHarness
from repro.workloads import ZipfSampler, distinct_keys


def main() -> None:
    table = ConcurrentMcCuckoo(McCuckoo(n_buckets=700, d=3, maxloop=500, seed=9))
    harness = InterleavingHarness(table, probe_sample=6, seed=2)

    flows = distinct_keys(1800, seed=21)  # ~86 % load
    actions = [f"port-{i % 48}" for i in range(len(flows))]

    print(f"installing {len(flows)} flows with reader probes interleaved ...")
    from repro.concurrency import InterleaveReport

    report = InterleaveReport()
    for flow, action in zip(flows, actions):
        harness.insert_with_probes(flow, action, report=report)

    print(f"  writer steps observed: {report.steps}")
    print(f"  reader probes executed: {report.probes}")
    print(f"  probes that missed an installed flow: {len(report.missed_keys)}")
    print(f"  probes that saw a wrong action:       {len(report.wrong_values)}")
    assert report.linearizable, "a reader observed a vanished flow!"
    print("  no reader ever lost a flow mid-insertion (path-ordered moves)\n")

    # Serve a skewed packet stream (a few elephant flows dominate).
    sampler = ZipfSampler(len(flows), s=1.1, seed=4)
    packets = 20000
    before = table.table.mem.off_chip.reads
    for _ in range(packets):
        flow = flows[sampler.sample()]
        outcome = table.lookup(flow)
        assert outcome.found
    reads = table.table.mem.off_chip.reads - before
    print(f"served {packets} packets at load {table.table.load_ratio:.2%}")
    print(f"off-chip reads per packet: {reads / packets:.3f} "
          f"(d={table.table.d} candidate buckets exist per flow)")


if __name__ == "__main__":
    main()
