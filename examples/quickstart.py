#!/usr/bin/env python3
"""Quickstart: the McCuckoo API in five minutes.

Builds a multi-copy cuckoo table, inserts a batch of items, looks some up,
deletes a few, and prints the memory-access accounting that the paper's
evaluation is built on — contrasted with standard cuckoo hashing.

Run:  python examples/quickstart.py
"""

from repro import DeletionMode, CuckooTable, McCuckoo, MemoryModel
from repro.workloads import distinct_keys


def main() -> None:
    # One MemoryModel per table: every on-chip (counter) and off-chip
    # (bucket) access the scheme performs is charged to it.
    table = McCuckoo(
        n_buckets=5000,          # per sub-table; capacity = 3 * 5000 items
        d=3,                     # the paper's default
        maxloop=500,
        deletion_mode=DeletionMode.RESET,
        mem=MemoryModel(),
    )

    keys = distinct_keys(12000, seed=1)  # 80 % load
    print(f"inserting {len(keys)} items into capacity {table.capacity} ...")
    for key in keys:
        outcome = table.put(key, value=key % 97)
        if outcome.stashed:
            print(f"  key {key:#x} went to the off-chip stash")

    print(f"load ratio: {table.load_ratio:.2%}")
    print(f"total kick-outs during the fill: {table.total_kicks}")
    histogram = table.counter_histogram()
    print(f"copy-counter histogram (0=empty): {dict(sorted(histogram.items()))}")

    # Lookups: existing keys are found; never-inserted keys are usually
    # rejected by the on-chip counters without touching off-chip memory.
    hit = table.lookup(keys[0])
    print(f"lookup(existing) -> found={hit.found}, buckets read={hit.buckets_read}")
    miss = table.lookup(0xDEAD_BEEF_DEAD_BEEF)
    print(f"lookup(missing)  -> found={miss.found}, buckets read={miss.buckets_read}")

    # Deletion only resets on-chip counters: zero off-chip writes.
    before = table.mem.off_chip.writes
    table.delete(keys[1])
    print(f"delete wrote {table.mem.off_chip.writes - before} off-chip words")

    print("\naccess accounting:", table.mem.summary())
    print(f"on-chip helper footprint: {table.onchip_bytes} bytes "
          f"for {table.capacity} buckets")

    # The same fill through standard cuckoo hashing, for contrast.
    baseline = CuckooTable(n_buckets=5000, d=3, maxloop=500)
    for key in keys:
        baseline.put(key, value=key % 97)
    print("\nstandard cuckoo, same fill:")
    print(f"  total kick-outs: {baseline.total_kicks} "
          f"(McCuckoo needed {table.total_kicks})")
    print(f"  off-chip reads:  {baseline.mem.off_chip.reads} "
          f"(McCuckoo: {table.mem.off_chip.reads})")


if __name__ == "__main__":
    main()
