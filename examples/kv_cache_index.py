#!/usr/bin/env python3
"""Key-value store index over the DocWords corpus, with churn.

SILT/MemC3-style stores index (key → location) pairs in a cuckoo table.
This example drives McCuckoo with the paper's dataset shape — the synthetic
DocWords corpus (DocID ⊕ WordID keys, Zipf word frequencies) — through a
realistic churn cycle: bulk load, point lookups, updates, deletions, and a
stash flag refresh.  A multimap on top indexes which documents contain each
word, demonstrating the paper's multiset-by-indirection design.

Run:  python examples/kv_cache_index.py
"""

from repro import DeletionMode, McCuckoo, McCuckooMultiMap
from repro.workloads import DocWordsConfig, DocWordsGenerator, split_key


def main() -> None:
    corpus = DocWordsGenerator(
        DocWordsConfig(n_docs=150, n_words=4000, words_per_doc=100, seed=13)
    )
    keys = corpus.materialise()
    print(f"synthetic DocWords corpus: {len(keys)} distinct (doc, word) items")

    n_buckets = int(len(keys) / 0.85 / 3) + 1  # target ~85 % load
    table = McCuckoo(
        n_buckets, d=3, maxloop=500, deletion_mode=DeletionMode.RESET, seed=17
    )

    for position, key in enumerate(keys):
        table.put(key, value=("segment", position))
    print(f"bulk load done: load {table.load_ratio:.2%}, "
          f"{len(table.stash or [])} items in stash")

    # Point lookups and in-place updates (every copy is rewritten).
    doc, word = split_key(keys[0])
    outcome = table.lookup(keys[0])
    print(f"(doc {doc}, word {word}) -> {outcome.value}")
    table.upsert(keys[0], ("segment", 999_999))
    print(f"after upsert -> {table.get(keys[0])}")

    # Churn: drop the oldest third of the corpus, then refresh stash flags.
    victims = keys[: len(keys) // 3]
    writes_before = table.mem.off_chip.writes
    for key in victims:
        table.delete(key)
    print(f"deleted {len(victims)} items with "
          f"{table.mem.off_chip.writes - writes_before} off-chip writes")
    returned = table.refresh_stash()
    print(f"stash flag refresh re-inserted {returned} items into the main table")

    # Multiset layer: word -> documents containing it.
    posting = McCuckooMultiMap(lambda: McCuckoo(2600, d=3, maxloop=500, seed=23))
    for key in keys:
        doc, word = split_key(key)
        posting.add(word, doc)
    hot_word = 0  # Zipf rank 0 is the most frequent word
    docs = posting.get(hot_word)
    print(f"\nposting list of the hottest word: appears in {len(docs)} documents")
    print(f"distinct indexed words: {posting.distinct_keys()}")


if __name__ == "__main__":
    main()
