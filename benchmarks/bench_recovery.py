"""Perf-regression harness: restart time, full replay vs checkpoint + tail.

Runs the :mod:`repro.analysis.bench_recovery` harness over growing write
histories, saves the machine-readable baseline to
``benchmarks/results/BENCH_recovery.json``, and asserts the two
properties the maintenance subsystem exists for:

* checkpointed recovery beats full replay at the largest history (the
  index is restored from the snapshot instead of re-inserted key by key);
* checkpointed restart time grows *slower* than full replay as the
  history grows (flat-ish in total historical log bytes — the residual
  growth is the cheap prefix CRC walk, not index work).

Set ``BENCH_RECOVERY_QUICK=1`` to run the seconds-scale CI smoke
configuration instead.
"""

import os
import pathlib

from repro.analysis.bench_recovery import (
    BenchRecoveryConfig,
    compare_to_baseline,
    load_report,
    render_report,
    run_bench_recovery,
    write_report,
)
from repro.apps.kvstore import LogStructuredStore

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: soft floor for CI boxes — the committed baseline records the real
#: margin; shared runners are too noisy to gate on the full target
MIN_SPEEDUP = 1.5

#: checkpointed restart may not slow down more than this against the
#: committed baseline (shape-matched runs only; see compare_to_baseline)
MAX_REGRESSION = 0.30


def test_recovery_restart_time(benchmark):
    quick = bool(os.environ.get("BENCH_RECOVERY_QUICK"))
    config = BenchRecoveryConfig.quick() if quick else BenchRecoveryConfig()
    report = run_bench_recovery(config, verbose=True)
    print("\n" + render_report(report))

    headline = report["headline"]
    assert headline["speedup"] >= MIN_SPEEDUP, (
        f"checkpointed recovery regressed: {headline['speedup']:.2f}x "
        f"< {MIN_SPEEDUP}x over full replay at {headline['largest_ops']} ops"
    )
    assert (
        headline["checkpoint_replay_growth"]
        < headline["full_replay_growth"]
    ), (
        "checkpointed restart must scale slower than full replay: grew "
        f"{headline['checkpoint_replay_growth']:.1f}x vs full replay's "
        f"{headline['full_replay_growth']:.1f}x over a "
        f"{headline['history_growth']:.1f}x history"
    )

    baseline_path = RESULTS_DIR / "BENCH_recovery.json"
    if baseline_path.exists():
        ok, message = compare_to_baseline(
            report, load_report(str(baseline_path)),
            max_regression=MAX_REGRESSION,
        )
        print(f"baseline check: {message}")
        assert ok, f"restart-time regression: {message}"

    RESULTS_DIR.mkdir(exist_ok=True)
    write_report(report, str(RESULTS_DIR / "BENCH_recovery.json"))

    # timed op: one checkpointed recovery at the mid-size history
    mid_ops = config.op_counts[len(config.op_counts) // 2]
    store = LogStructuredStore(
        expected_items=2 * mid_ops, seed=config.seed, durable=True
    )
    for op in range(mid_ops):
        store.put(op, b"%08d" % op)
        if op + 1 == mid_ops - config.tail_ops:
            checkpoint = store.take_checkpoint()
    image = store.log_bytes
    benchmark(
        lambda: LogStructuredStore.recover_with_checkpoint(
            image, checkpoint, expected_items=2 * mid_ops, seed=config.seed
        )
    )
