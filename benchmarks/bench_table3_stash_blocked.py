"""Table III — stash statistics for 3-hash 3-slot B-McCuckoo at 97.5-100 %.

Paper shape: the blocked multi-copy table keeps the stash empty until
~99 % load, then ramps; stash-visit rate on non-existing lookups stays
≈0 %.
"""

from repro import BlockedMcCuckoo
from repro.analysis import table3_stash_blocked
from repro.workloads import distinct_keys, missing_keys

LOADS = (0.975, 0.98, 0.985, 0.99, 0.995, 1.0)
MAXLOOPS = (200, 500)


def test_table3_stash_blocked(benchmark, bench_scale, save_result):
    result = table3_stash_blocked(bench_scale, loads=LOADS, maxloops=MAXLOOPS)
    save_result(result)

    for maxloop in MAXLOOPS:
        series = result.series("load", "stash_items", maxloop=maxloop)
        assert series[0.975] <= 1.0, "stash should be ~empty at 97.5 %"
        assert series[1.0] >= series[0.975], "stash must ramp toward 100 %"
    for row in result.rows:
        assert row["stash_visit_pct_missing_lookups"] < 0.5
        assert row["stash_pct_of_items"] < 5.0

    # timed op: missing lookups against a 99 %-full blocked table
    table = BlockedMcCuckoo(bench_scale.n_blocked, d=3, slots=3, seed=117,
                            maxloop=500)
    keys = distinct_keys(int(table.capacity * 0.99), seed=118)
    for key in keys:
        table.put(key)
    absent = missing_keys(256, set(keys), seed=119)
    state = {"i": 0}

    def lookup_missing_at_99():
        table.lookup(absent[state["i"] % len(absent)])
        state["i"] += 1

    benchmark(lookup_missing_at_99)
