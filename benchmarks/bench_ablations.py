"""Ablations for the design choices DESIGN.md calls out.

* sibling tracking: counter-disambiguation reads vs metadata fix-up writes;
* kick policy: random-walk (the paper's choice) vs MinCounter vs bubbling;
* deletion mode: RESET (loses the zero-counter screen) vs TOMBSTONE;
* stash screening: McCuckoo's counter+flag screen vs CHS's always-check.
"""

from repro import McCuckoo, MinCounterPolicy
from repro.analysis import (
    Scale,
    ablation_deletion_mode,
    ablation_kick_policy,
    ablation_sibling_tracking,
    ablation_stash_screen,
)
from repro.workloads import distinct_keys


def _scale(bench_scale):
    return Scale(n_single=max(400, bench_scale.n_single // 2),
                 repeats=bench_scale.repeats, n_queries=bench_scale.n_queries)


def test_ablation_sibling_tracking(benchmark, bench_scale, save_result):
    result = ablation_sibling_tracking(_scale(bench_scale))
    save_result(result)
    for load in (0.85,):
        rows = {row["mode"]: row for row in result.filter_rows(load=load)}
        # metadata mode trades disambiguation reads for fix-up writes
        assert rows["metadata"]["writes_per_insert"] >= rows["read"]["writes_per_insert"]
        assert rows["metadata"]["reads_per_insert"] <= rows["read"]["reads_per_insert"] * 1.2

    from repro import SiblingTracking

    table = McCuckoo(400, d=3, seed=120, sibling_tracking=SiblingTracking.METADATA)
    keys = distinct_keys(int(table.capacity * 0.8), seed=121)
    state = {"i": 0}

    def metadata_insert():
        if state["i"] < len(keys):
            table.put(keys[state["i"]])
            state["i"] += 1
        else:
            table.lookup(keys[0])

    benchmark(metadata_insert)


def test_ablation_kick_policy(benchmark, bench_scale, save_result):
    result = ablation_kick_policy(_scale(bench_scale))
    save_result(result)
    rows = {(row["policy"], row["load"]): row["kicks_per_insert"]
            for row in result.rows}
    # both policies must resolve collisions; MinCounter should not be
    # drastically worse than random-walk at high load
    assert rows[("mincounter", 0.9)] <= rows[("random-walk", 0.9)] * 1.5
    # past the d=3 threshold the stash absorbs every failed walk; bubbling's
    # labels prove exhaustion instead of burning the whole kick budget
    assert rows[("bubbling", 0.97)] <= rows[("random-walk", 0.97)] * 0.25

    table = McCuckoo(300, d=3, seed=122, kick_policy=MinCounterPolicy())
    keys = distinct_keys(int(table.capacity * 0.85), seed=123)
    state = {"i": 0}

    def mincounter_insert():
        if state["i"] < len(keys):
            table.put(keys[state["i"]])
            state["i"] += 1
        else:
            table.lookup(keys[0])

    benchmark(mincounter_insert)


def test_ablation_deletion_mode(benchmark, bench_scale, save_result):
    result = ablation_deletion_mode(_scale(bench_scale))
    save_result(result)
    rows = {row["mode"]: row["accesses_per_missing_lookup"] for row in result.rows}
    # tombstones keep the zero-counter screen sound -> cheaper missing lookups
    assert rows["tombstone"] <= rows["reset"]

    from repro import DeletionMode

    table = McCuckoo(400, d=3, seed=124, deletion_mode=DeletionMode.TOMBSTONE)
    keys = distinct_keys(int(table.capacity * 0.6), seed=125)
    for key in keys:
        table.put(key)
    victim = keys[0]

    def tombstone_cycle():
        table.delete(victim)
        table.put(victim)

    benchmark(tombstone_cycle)


def test_ablation_stash_screen(benchmark, bench_scale, save_result):
    result = ablation_stash_screen(_scale(bench_scale))
    save_result(result)
    rows = {row["scheme"]: row["stash_visit_pct"] for row in result.rows}
    assert rows["CHS"] == 100.0  # every failed lookup probes the stash
    assert rows["McCuckoo"] < 2.0  # the screen removes essentially all

    table = McCuckoo(400, d=3, seed=126, maxloop=0)
    keys = distinct_keys(table.capacity, seed=127)
    for key in keys[: int(table.capacity * 0.9)]:
        table.put(key)
    absent = distinct_keys(256, seed=128)
    state = {"i": 0}

    def screened_missing_lookup():
        table.lookup(absent[state["i"] % len(absent)])
        state["i"] += 1

    benchmark(screened_missing_lookup)


def test_ablation_d_sweep(benchmark, bench_scale, save_result):
    from repro.analysis import ablation_d_sweep

    result = ablation_d_sweep(_scale(bench_scale))
    save_result(result)
    rows = {row["d"]: row for row in result.rows}
    assert rows[2]["first_failure_load"] < rows[3]["first_failure_load"]
    assert rows[4]["first_failure_load"] > rows[3]["first_failure_load"]
    assert rows[3]["counter_bits"] == 2 and rows[4]["counter_bits"] == 4

    table = McCuckoo(300, d=4, seed=129)
    keys = distinct_keys(int(table.capacity * 0.9), seed=130)
    state = {"i": 0}

    def d4_insert():
        if state["i"] < len(keys):
            table.put(keys[state["i"]])
            state["i"] += 1
        else:
            table.lookup(keys[0])

    benchmark(d4_insert)


def test_ablation_blocked_counter_screen(benchmark, bench_scale, save_result):
    from repro import BlockedMcCuckoo
    from repro.analysis import ablation_blocked_counter_screen

    result = ablation_blocked_counter_screen(_scale(bench_scale))
    save_result(result)
    by_cell = {(row["load"], row["screen"]): row for row in result.rows}
    # at low load the screen wins missing lookups; near full the old way
    # wins existing lookups (the paper's §IV.C remark)
    assert (by_cell[(0.2, "on")]["latency_us_missing"]
            < by_cell[(0.2, "off")]["latency_us_missing"])
    assert (by_cell[(0.98, "off")]["latency_us_existing"]
            <= by_cell[(0.98, "on")]["latency_us_existing"])

    table = BlockedMcCuckoo(200, d=3, slots=3, seed=131,
                            lookup_counter_screen=False)
    keys = distinct_keys(int(table.capacity * 0.95), seed=132)
    for key in keys:
        table.put(key)
    state = {"i": 0}

    def old_way_lookup():
        table.lookup(keys[state["i"] % len(keys)])
        state["i"] += 1

    benchmark(old_way_lookup)


def test_ablation_path_insert(benchmark, bench_scale, save_result):
    from repro import ConcurrentMcCuckoo
    from repro.analysis import ablation_path_insert

    result = ablation_path_insert(_scale(bench_scale))
    save_result(result)
    rows = {row["strategy"]: row for row in result.rows}
    # counter-guided path search moves far fewer items per insert...
    assert rows["path"]["kicks_per_insert"] < rows["random-walk"]["kicks_per_insert"] * 0.6
    # ...without paying more off-chip reads (terminals are found on-chip)
    assert rows["path"]["reads_per_insert"] < rows["random-walk"]["reads_per_insert"] * 1.3

    table = ConcurrentMcCuckoo(McCuckoo(300, d=3, seed=133, maxloop=500))
    keys = distinct_keys(int(table.table.capacity * 0.88), seed=134)
    state = {"i": 0}

    def path_insert():
        if state["i"] < len(keys):
            table.insert(keys[state["i"]])
            state["i"] += 1
        else:
            table.lookup(keys[0])

    benchmark(path_insert)
