#!/usr/bin/env bash
# Regenerate every committed benchmark baseline, then export CSVs.
#
#   benchmarks/run_all.sh            # quick (CI-shape) runs, ~minutes
#   FULL=1 benchmarks/run_all.sh     # full-size sweeps, much longer
#   benchmarks/run_all.sh --plots    # also render results/plots/ charts
#
# Baselines land in benchmarks/results/ as BENCH_core.json,
# BENCH_serve.json and BENCH_recovery.json — the same files the CI
# regression gates compare against — plus a CSV per row table from
# to_csv.py.  The serve sweep includes the ring-vs-shared read-mix
# crossover (see docs/performance.md); its >=1.5x gate self-reports as
# skipped on boxes with fewer than 2 CPUs.

set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

RESULTS=benchmarks/results
mkdir -p "$RESULTS"

if [[ -n "${FULL:-}" ]]; then
    QUICK=()
else
    QUICK=(--quick)
fi

PLOTS=0
for arg in "$@"; do
    case "$arg" in
        --plots) PLOTS=1 ;;
        *) echo "run_all.sh: unknown argument: $arg" >&2; exit 2 ;;
    esac
done

echo "== bench-core =="
python -m repro bench-core "${QUICK[@]}" -o "$RESULTS/BENCH_core.json"

echo "== bench-serve (worker sweep + read-mix crossover) =="
python -m repro bench-serve "${QUICK[@]}" -o "$RESULTS/BENCH_serve.json"

echo "== bench-recovery =="
python -m repro bench-recovery "${QUICK[@]}" -o "$RESULTS/BENCH_recovery.json"

echo "== csv export =="
python benchmarks/to_csv.py \
    "$RESULTS/BENCH_core.json" \
    "$RESULTS/BENCH_serve.json" \
    "$RESULTS/BENCH_recovery.json"

if [[ "$PLOTS" == 1 ]]; then
    echo "== plots =="
    python benchmarks/plot.py
fi

echo "done: baselines + CSVs under $RESULTS/"
