"""Perf-regression harness: scalar vs batched kernel throughput.

Runs the :mod:`repro.analysis.bench_core` harness at the full acceptance
scale (100k uniform lookups at up to 0.9 load), saves the machine-readable
baseline to ``benchmarks/results/BENCH_core.json``, asserts the batched
lookup kernel keeps a comfortable margin over the scalar path, and times
one ``lookup_many`` batch with pytest-benchmark.

Set ``BENCH_CORE_QUICK=1`` to run the seconds-scale CI smoke configuration
instead (smaller table, 10k queries, 0.9 load only).
"""

import dataclasses
import os
import pathlib
import random

from repro._numpy import numpy_available
from repro.analysis.bench_core import (
    BenchCoreConfig,
    compare_highload_to_baseline,
    compare_to_baseline,
    load_report,
    render_report,
    run_bench_core,
    write_report,
)
from repro.core.mccuckoo import McCuckoo
from repro.memory.model import MemoryModel

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: soft floor for CI boxes — the committed baseline records the real margin
#: (>=3x); shared runners are too noisy to gate on the full target.
MIN_LOOKUP_SPEEDUP = 1.5

#: python-backend rows may not fall more than this below the committed
#: baseline (shape-matched cells only; see compare_to_baseline)
MAX_PYTHON_REGRESSION = 0.30


def test_core_throughput(benchmark):
    quick = bool(os.environ.get("BENCH_CORE_QUICK"))
    config = BenchCoreConfig.quick() if quick else BenchCoreConfig()
    if numpy_available():
        config = dataclasses.replace(config, backends=("python", "numpy"))
    report = run_bench_core(config, verbose=True)
    print("\n" + render_report(report))

    headline = report["headline"]
    assert headline["lookup_speedup"] >= MIN_LOOKUP_SPEEDUP, (
        f"batched lookup regressed: {headline['lookup_speedup']:.2f}x "
        f"< {MIN_LOOKUP_SPEEDUP}x over scalar at load {headline['load']}"
    )
    # batched mutation kernels must at least not regress badly
    assert headline["put_speedup"] >= 0.8
    assert headline["delete_speedup"] >= 0.8

    # the pure-Python engine is the default everyone gets: it may not pay
    # for the NumPy backend by regressing against the committed baseline
    baseline_path = RESULTS_DIR / "BENCH_core.json"
    if baseline_path.exists():
        baseline = load_report(str(baseline_path))
        ok, message = compare_to_baseline(
            report, baseline,
            max_regression=MAX_PYTHON_REGRESSION, backend="python",
        )
        print(f"baseline check: {message}")
        assert ok, f"python-backend regression: {message}"
        # the high-load frontier may not recede: every (load, phase, batch)
        # cell in the committed baseline must still exist and hold its
        # throughput floor
        ok, message = compare_highload_to_baseline(
            report, baseline,
            max_regression=MAX_PYTHON_REGRESSION, backend="python",
        )
        print(f"highload baseline check: {message}")
        assert ok, f"high-load regression: {message}"

    # the frontier rows exist and insertion cost stays bounded: filling a
    # d=4 table to 0.95+ with the bubbling policy must not burn the kick
    # budget on ordinary inserts
    highload_puts = [row for row in report["highload_rows"]
                     if row["phase"] == "put" and row["batch"] == 1]
    assert highload_puts, "bench-core produced no high-load put rows"
    for row in highload_puts:
        assert row["kicks_per_insert"] < 2.0, (
            f"unbounded insert cost at load {row['load']} "
            f"({row['backend']}): {row['kicks_per_insert']:.2f} kicks/insert"
        )

    RESULTS_DIR.mkdir(exist_ok=True)
    write_report(report, str(RESULTS_DIR / "BENCH_core.json"))

    # timed op: one 256-key lookup_many batch at 0.9 load
    rng = random.Random(1)
    table = McCuckoo(4_000, d=3, seed=1, mem=MemoryModel())
    keys = []
    while table.load_ratio < 0.9:
        key = rng.getrandbits(64)
        if not table.put(key).failed:
            keys.append(key)
    queries = [keys[rng.randrange(len(keys))] for _ in range(256)]
    benchmark(lambda: table.lookup_many(queries))
