"""Table I — load ratio at which the first real collision occurs.

Paper shape (70M-key run): Cuckoo 9.27 %, McCuckoo 23.20 %, BCHT 46.03 %,
B-McCuckoo 61.42 %.  The absolute onset depends on table size (smaller
tables collide relatively later), but the strict ordering and the roughly
2x multi-copy advantage must hold.
"""

from repro.analysis import Scale, table1_first_collision
from repro.analysis.sweep import make_schemes
from repro.workloads import key_stream


def test_table1_first_collision(benchmark, bench_scale, save_result):
    result = table1_first_collision(bench_scale)
    save_result(result)

    loads = {row["scheme"]: row["first_collision_load"] for row in result.rows}
    assert loads["Cuckoo"] < loads["McCuckoo"] < loads["BCHT"] < loads["B-McCuckoo"]
    assert loads["McCuckoo"] > loads["Cuckoo"] * 1.3
    assert loads["B-McCuckoo"] > loads["BCHT"] * 1.1

    # timed op: fill a fresh McCuckoo until its first collision
    small = Scale(n_single=200, repeats=1)

    def fill_until_collision():
        table = make_schemes(small, seed=103)["McCuckoo"]()
        keys = key_stream(seed=104)
        while table.events.first_collision_items is None:
            table.put(next(keys))
        return table.events.first_collision_items

    benchmark(fill_until_collision)
