"""Fig. 11 — load ratio at the first insertion failure vs maxloop (50-500).

Paper shape: failure load increases with maxloop; multi-copy schemes reach
higher failure-free load at the same maxloop (equivalently, the same load
with a smaller maxloop); blocked schemes fail far later than single-slot.
"""

from repro import McCuckoo
from repro.analysis import Scale, fig11_first_failure
from repro.workloads import key_stream

MAXLOOPS = (50, 100, 200, 300, 400, 500)


def test_fig11_first_failure(benchmark, bench_scale, save_result):
    scale = Scale(n_single=bench_scale.n_single, repeats=bench_scale.repeats,
                  n_queries=bench_scale.n_queries)
    result = fig11_first_failure(scale, maxloops=MAXLOOPS)
    save_result(result)

    for scheme in ("Cuckoo", "McCuckoo", "BCHT", "B-McCuckoo"):
        series = result.series("maxloop", "first_failure_load", scheme=scheme)
        assert series[500] >= series[50], f"{scheme}: maxloop does not help"

    for maxloop in MAXLOOPS:
        loads = {
            row["scheme"]: row["first_failure_load"]
            for row in result.filter_rows(maxloop=maxloop)
        }
        assert loads["McCuckoo"] >= loads["Cuckoo"] * 0.98
        assert loads["B-McCuckoo"] >= loads["BCHT"] * 0.98
        assert loads["BCHT"] > loads["Cuckoo"]

    # multi-copy reaches single-copy's maxloop-500 load with maxloop <= 200
    cu500 = result.series("maxloop", "first_failure_load", scheme="Cuckoo")[500]
    mc200 = result.series("maxloop", "first_failure_load", scheme="McCuckoo")[200]
    assert mc200 >= cu500 * 0.97

    # timed op: fill a small table to its first failure
    def fill_until_failure():
        table = McCuckoo(150, d=3, maxloop=100, seed=105)
        keys = key_stream(seed=106)
        while table.events.first_failure_items is None:
            table.put(next(keys))
        return table.events.first_failure_items

    benchmark(fill_until_failure)
