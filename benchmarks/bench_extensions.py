"""Extension benches beyond the paper's exhibits.

* on-chip memory: McCuckoo's 2-bit counters vs an EMOMA-style Bloom front
  vs SmartCuckoo's pseudoforest (the paper's contribution 2);
* SmartCuckoo's walk-free failure prediction vs blind d=2 random walk;
* AMAC composition: batched lookups on top of the counter screen;
* hash-family robustness: the Fig. 9/13 shapes hold across BOB hash,
  tabulation and double hashing.
"""

from repro import (
    BloomFrontedCuckoo,
    CuckooTable,
    McCuckoo,
    SmartCuckoo,
    batched_lookup,
)
from repro.analysis import ExperimentResult
from repro.hashing import FAMILIES
from repro.workloads import distinct_keys, key_stream, missing_keys, sample_keys


def test_onchip_memory_comparison(benchmark, bench_scale, save_result):
    """Counters must screen missing lookups with several times less on-chip
    memory than a Bloom front sized at 1 % fp."""
    n_buckets = bench_scale.n_single
    result = ExperimentResult(
        "ext-onchip",
        "On-chip memory vs missing-lookup screening at 50 % load",
        columns=("scheme", "onchip_bytes", "offchip_probe_pct"),
    )
    seed = 901
    mccuckoo = McCuckoo(n_buckets, d=3, seed=seed)
    bloom = BloomFrontedCuckoo(n_buckets, d=3, fp_rate=0.01, seed=seed)
    keys = distinct_keys(int(mccuckoo.capacity * 0.5), seed=seed + 1)
    for key in keys:
        mccuckoo.put(key)
        bloom.put(key)
    absent = missing_keys(bench_scale.n_queries, set(keys), seed=seed + 2)

    def probe_pct(table):
        probed = 0
        for key in absent:
            before = table.mem.off_chip.reads
            table.lookup(key)
            if table.mem.off_chip.reads > before:
                probed += 1
        return probed / len(absent) * 100.0

    rows = {
        "McCuckoo-counters": (mccuckoo.onchip_bytes, probe_pct(mccuckoo)),
        "Bloom-front-1pct": (bloom.onchip_bytes, probe_pct(bloom)),
    }
    for name, (size, pct) in rows.items():
        result.add_row(scheme=name, onchip_bytes=size, offchip_probe_pct=pct)
    save_result(result)

    assert rows["McCuckoo-counters"][0] * 3 < rows["Bloom-front-1pct"][0]
    assert rows["McCuckoo-counters"][1] < 60.0
    assert rows["Bloom-front-1pct"][1] < 5.0

    state = {"i": 0}

    def screened_lookup():
        mccuckoo.lookup(absent[state["i"] % len(absent)])
        state["i"] += 1

    benchmark(screened_lookup)


def test_smartcuckoo_walk_free_failures(benchmark, bench_scale, save_result):
    """SmartCuckoo predicts doomed inserts with zero kicks; the blind d=2
    walk burns maxloop kicks on each."""
    result = ExperimentResult(
        "ext-smartcuckoo",
        "d=2 insertion failure cost: pseudoforest prediction vs blind walk",
        columns=("scheme", "total_kicks", "failures", "kicks_per_failure"),
    )
    n_buckets = bench_scale.n_single // 2
    offered = int(n_buckets * 2 * 0.9)
    smart = SmartCuckoo(n_buckets, seed=902, maxloop=200)
    blind = CuckooTable(n_buckets, d=2, seed=902, maxloop=200)
    keys = distinct_keys(offered, seed=903)
    for key in keys:
        smart.put(key)
        blind.put(key)
    smart_failures = smart.predicted_failures + smart.walked_failures
    blind_failures = offered - len(blind)
    result.add_row(
        scheme="SmartCuckoo",
        total_kicks=smart.total_kicks,
        failures=smart_failures,
        kicks_per_failure=0.0,
    )
    result.add_row(
        scheme="Cuckoo(d=2)",
        total_kicks=blind.total_kicks,
        failures=blind_failures,
        kicks_per_failure=(blind.total_kicks / blind_failures
                           if blind_failures else 0.0),
    )
    save_result(result)

    assert smart.walked_failures == 0
    assert smart_failures > 0 and blind_failures > 0
    assert smart.total_kicks < blind.total_kicks

    keys_iter = key_stream(seed=904)

    def predicted_insert():
        smart.put(next(keys_iter))

    benchmark(predicted_insert)


def test_amac_composition(benchmark, bench_scale, save_result):
    """Batched (AMAC-style) lookups: epochs(McCuckoo) < epochs(Cuckoo) at
    every pipeline depth — screening and overlap compose."""
    result = ExperimentResult(
        "ext-amac",
        "Batched lookup epochs vs pipeline depth (50 % existing / 50 % missing)",
        columns=("scheme", "depth", "epochs", "overlap_factor"),
    )
    n_buckets = bench_scale.n_single
    seed = 905
    mccuckoo = McCuckoo(n_buckets, d=3, seed=seed)
    cuckoo = CuckooTable(n_buckets, d=3, seed=seed)
    keys = distinct_keys(int(mccuckoo.capacity * 0.6), seed=seed + 1)
    for key in keys:
        mccuckoo.put(key)
        cuckoo.put(key)
    probes = sample_keys(keys, 500, seed=seed + 2) + missing_keys(
        500, set(keys), seed=seed + 3
    )
    epochs = {}
    for depth in (1, 4, 8, 16):
        for name, table in (("McCuckoo", mccuckoo), ("Cuckoo", cuckoo)):
            batch = batched_lookup(table, probes, depth=depth)
            epochs[(name, depth)] = batch.epochs
            result.add_row(
                scheme=name,
                depth=depth,
                epochs=batch.epochs,
                overlap_factor=batch.overlap_factor,
            )
    save_result(result)

    for depth in (1, 4, 8, 16):
        assert epochs[("McCuckoo", depth)] < epochs[("Cuckoo", depth)]
    assert epochs[("McCuckoo", 16)] < epochs[("McCuckoo", 1)] / 4

    def batched_pass():
        batched_lookup(mccuckoo, probes[:100], depth=8)

    benchmark(batched_pass)


def test_hash_family_robustness(benchmark, bench_scale, save_result):
    """The headline shapes are hash-agnostic: for every family, McCuckoo
    kicks less than Cuckoo at 85 % load and screens missing lookups."""
    result = ExperimentResult(
        "ext-hash-families",
        "Kick and screening advantages across hash families",
        columns=("family", "cuckoo_kicks", "mccuckoo_kicks",
                 "missing_reads_per_lookup"),
    )
    n_buckets = max(300, bench_scale.n_single // 3)
    for family_name in ("splitmix", "bob", "tabulation", "double"):
        family = FAMILIES[family_name]
        seed = 906
        mccuckoo = McCuckoo(n_buckets, d=3, seed=seed, family=family)
        cuckoo = CuckooTable(n_buckets, d=3, seed=seed, family=family)
        keys = distinct_keys(int(mccuckoo.capacity * 0.85), seed=seed + 1)
        for key in keys:
            mccuckoo.put(key)
            cuckoo.put(key)
        absent = missing_keys(300, set(keys), seed=seed + 2)
        before = mccuckoo.mem.off_chip.reads
        for key in absent:
            mccuckoo.lookup(key)
        missing_reads = (mccuckoo.mem.off_chip.reads - before) / len(absent)
        result.add_row(
            family=family_name,
            cuckoo_kicks=cuckoo.total_kicks,
            mccuckoo_kicks=mccuckoo.total_kicks,
            missing_reads_per_lookup=missing_reads,
        )
        assert mccuckoo.total_kicks < cuckoo.total_kicks, family_name
        assert missing_reads < 3.0, family_name
    save_result(result)

    bob_table = McCuckoo(200, d=3, seed=907, family=FAMILIES["bob"])
    fresh = distinct_keys(int(bob_table.capacity * 0.5), seed=908)
    state = {"i": 0}

    def bob_insert():
        if state["i"] < len(fresh):
            bob_table.put(fresh[state["i"]])
            state["i"] += 1
        else:
            bob_table.lookup(fresh[0])

    benchmark(bob_insert)


def test_incremental_resize_availability(benchmark, bench_scale, save_result):
    """The paper's §I criticism of rehashing, quantified: growing online
    keeps the worst single-insert cost bounded, while stop-the-world
    rehashing pays the whole table in one operation."""
    from repro import FailurePolicy
    from repro.core.resize import ResizableMcCuckoo

    result = ExperimentResult(
        "ext-resize",
        "Worst single-insert off-chip cost: online growth vs rehashing",
        columns=("scheme", "final_items", "worst_op_accesses", "mean_op_accesses"),
    )
    n_keys = bench_scale.n_single * 3  # forces at least one growth round
    keys = distinct_keys(n_keys, seed=910)

    def drive(table):
        worst = 0
        total = 0
        for key in keys:
            with table.mem.measure() as measurement:
                table.put(key)
            accesses = measurement.delta.off_chip.total
            worst = max(worst, accesses)
            total += accesses
        return worst, total / len(keys)

    online = ResizableMcCuckoo(
        bench_scale.n_single // 2, d=3, seed=911, maxloop=500,
        grow_at=0.85, migrate_batch=8,
    )
    rehashing = McCuckoo(
        bench_scale.n_single // 2, d=3, seed=911, maxloop=500,
        on_failure=FailurePolicy.REHASH,
    )
    online_worst, online_mean = drive(online)
    rehash_worst, rehash_mean = drive(rehashing)
    result.add_row(scheme="incremental", final_items=len(online),
                   worst_op_accesses=online_worst, mean_op_accesses=online_mean)
    result.add_row(scheme="rehash", final_items=len(rehashing),
                   worst_op_accesses=rehash_worst, mean_op_accesses=rehash_mean)
    save_result(result)

    assert len(online) == n_keys and len(rehashing) == n_keys
    assert online.generations >= 1 and rehashing.rehash_count >= 1
    # the availability claim: worst op at least 5x cheaper online
    assert online_worst * 5 < rehash_worst
    for key in keys[::37]:
        assert online.lookup(key).found

    fresh = distinct_keys(512, seed=912)
    state = {"i": 0}

    def online_insert():
        if state["i"] < len(fresh):
            online.put(fresh[state["i"]])
            state["i"] += 1
        else:
            online.lookup(fresh[0])

    benchmark(online_insert)
