"""Scale sensitivity: the headline shapes must hold across table sizes.

The paper ran at 70M keys; this repo defaults to thousands.  This bench
sweeps three sizes and asserts that the qualitative results — kick
reduction, missing-lookup screening, first-collision ordering — are not
artifacts of one size, and that the *scale-dependent* quantity
(first-collision load) moves the way theory says it must (larger tables
collide at relatively lower load, ~S^(-1/4) for single-copy cuckoo).
"""

from repro import CuckooTable, McCuckoo
from repro.analysis import ExperimentResult
from repro.analysis.theory import expected_first_collision_load
from repro.workloads import distinct_keys, key_stream, missing_keys

SIZES = (200, 800, 3200)  # buckets per sub-table


def test_scale_sensitivity(benchmark, save_result):
    result = ExperimentResult(
        "ext-scale",
        "Headline shapes across table sizes (buckets/sub-table)",
        columns=(
            "n_single",
            "kick_ratio_mc_over_cu",
            "missing_reads_mccuckoo",
            "first_collision_cuckoo",
            "first_collision_predicted",
        ),
    )
    kick_ratios = []
    collision_onsets = []
    for n_single in SIZES:
        seed = 950 + n_single
        mccuckoo = McCuckoo(n_single, d=3, seed=seed, maxloop=500)
        cuckoo = CuckooTable(n_single, d=3, seed=seed, maxloop=500)
        keys = distinct_keys(int(mccuckoo.capacity * 0.85), seed=seed + 1)
        for key in keys:
            mccuckoo.put(key)
            cuckoo.put(key)
        kick_ratio = (
            mccuckoo.total_kicks / cuckoo.total_kicks if cuckoo.total_kicks else 0.0
        )
        kick_ratios.append(kick_ratio)
        absent = missing_keys(400, set(keys), seed=seed + 2)
        before = mccuckoo.mem.off_chip.reads
        for key in absent:
            mccuckoo.lookup(key)
        missing_reads = (mccuckoo.mem.off_chip.reads - before) / len(absent)

        # first-collision onset is the minimum of many random draws and has
        # high variance: average several independent fills
        onsets = []
        for repeat in range(5):
            fresh = CuckooTable(n_single, d=3, seed=seed + 3 + repeat)
            stream = key_stream(seed=seed + 40 + repeat)
            while fresh.events.first_collision_items is None:
                fresh.put(next(stream))
            onsets.append(fresh.events.first_collision_items / fresh.capacity)
        onset = sum(onsets) / len(onsets)
        collision_onsets.append(onset)
        result.add_row(
            n_single=n_single,
            kick_ratio_mc_over_cu=kick_ratio,
            missing_reads_mccuckoo=missing_reads,
            first_collision_cuckoo=onset,
            first_collision_predicted=expected_first_collision_load(
                3 * n_single
            ),
        )
        # shape assertions at every size
        assert kick_ratio < 0.8, f"kick advantage lost at n={n_single}"
        assert missing_reads < 3.0, f"screening lost at n={n_single}"
    save_result(result)

    # scale law: bigger tables collide relatively earlier
    assert collision_onsets[0] > collision_onsets[-1]
    # and within a factor ~2 of the closed-form prediction at every size
    for row in result.rows:
        assert (
            row["first_collision_predicted"] / 2
            < row["first_collision_cuckoo"]
            < row["first_collision_predicted"] * 2.5
        )

    table = McCuckoo(SIZES[0], d=3, seed=999)
    fill = distinct_keys(int(table.capacity * 0.6), seed=1000)
    state = {"i": 0}

    def small_scale_insert():
        if state["i"] < len(fill):
            table.put(fill[state["i"]])
            state["i"] += 1
        else:
            table.lookup(fill[0])

    benchmark(small_scale_insert)
