"""Fig. 15 — insertion latency vs load, throughput vs record size (FPGA model).

Paper shape: multi-copy insertion avoids expensive off-chip reads, so its
modelled latency is lower at moderate-to-high load and its throughput
advantage grows with record size.
"""

from repro.analysis import fig15_insert_latency
from repro.analysis.experiments import RECORD_SIZES
from repro.memory.latency import PAPER_FPGA


def test_fig15_insert_latency(benchmark, bench_scale, core_sweep, save_result):
    result = fig15_insert_latency(bench_scale, sweep=core_sweep)
    save_result(result)

    def series(scheme, record_bytes=8):
        return {
            row["load"]: row["latency_us"]
            for row in result.filter_rows(scheme=scheme, record_bytes=record_bytes)
        }

    mc = series("McCuckoo")
    cu = series("Cuckoo")
    # single-copy latency blows up at high load; multi-copy stays flatter
    assert mc[0.85] < cu[0.85]
    assert cu[0.9] > cu[0.1] * 2

    # throughput vs record size at 50 % load: advantage grows with records
    def throughput(scheme, record_bytes):
        return [
            row["throughput_mops"]
            for row in result.filter_rows(
                scheme=scheme, load=0.5, record_bytes=record_bytes
            )
        ][0]

    gains = [
        throughput("McCuckoo", size) / throughput("Cuckoo", size)
        for size in RECORD_SIZES
    ]
    assert gains[-1] > gains[0], "record-size scaling should favour McCuckoo"
    assert all(gain > 1.0 for gain in gains)

    # timed op: converting a sweep's stats through the latency model
    cell = core_sweep[("McCuckoo", 0.5)]

    def model_conversion():
        total = 0.0
        for size in RECORD_SIZES:
            total += PAPER_FPGA.with_record_bytes(size).latency_us(cell.insert)
        return total

    benchmark(model_conversion)
