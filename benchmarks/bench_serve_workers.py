"""Perf-regression harness for the multi-process serving layer.

Sweeps worker counts through the :mod:`repro.analysis.bench_serve`
harness (single-process baseline, then ``WorkerServer`` at 1..N worker
processes over real TCP), saves the machine-readable baseline to
``benchmarks/results/BENCH_serve.json``, and gates three things:

* **No regression**: ops/sec at ``--workers 1`` must stay within 30% of
  the committed baseline, when the baseline was produced with the same
  workload shape (otherwise the comparison is meaningless and skipped).
* **Transport overhead**: with the shared-memory transport, 2 workers
  must reach at least 1 worker's ops/sec on *any* box — two workers
  should at worst tie one when there are no spare cores, so w2 < w1 is
  pure transport overhead, not core starvation.
* **Scaling**: on a box with >= 4 cores, 4 workers must reach >= 2x the
  ops/sec of 1 worker — the ISSUE's shard-parallelism acceptance
  criterion.  On smaller boxes this gate is *skipped*, the report says
  so explicitly (``headline.gate_skipped = "cpus<4"``), and no
  best-of-sweep speedup is recorded: a sub-1.0 ratio on a starved box
  reads as a regression when it is just a core count.
* **Shared reads**: at the 95%-GET mix the shared-memory image read
  path must deliver >= 1.5x the ring transport's GET throughput on a
  box with >= 2 cores (``headline.shared_vs_ring_get_95``); on 1-cpu
  boxes the gate is skipped with ``headline.read_gate_skipped`` — the
  zero-hop path's win is overlap, which needs a core for each side.

Set ``BENCH_SERVE_QUICK=1`` for the seconds-scale CI smoke configuration
(workers 0/1/2, 5k ops) — the committed baseline is produced at exactly
that shape so the CI regression gate always engages.  ``--transport``
follows ``REPRO_SERVE_TRANSPORT`` / shm availability via the library's
"auto" resolution.
"""

import os
import pathlib

from repro.analysis.bench_serve import (
    BenchServeConfig,
    compare_to_baseline,
    load_report,
    render_report,
    run_bench_serve,
    write_report,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BASELINE_PATH = RESULTS_DIR / "BENCH_serve.json"

#: CI floor: fail when workers=1 throughput drops more than this fraction
#: below the committed baseline (shape-matched runs only).
MAX_REGRESSION = 0.30

#: w2/w1 floor for the shm transport: nominally 1.0 ("two workers never
#: lose to one"), with a small noise allowance for best-of-1 CI runs.
MIN_W2_VS_W1_SHM = 0.9

#: shared/ring GET-throughput floor at the 95%-read mix, on boxes with
#: >= 2 cpus (skipped — with the reason recorded — everywhere else).
MIN_SHARED_VS_RING_GET = 1.5


def test_serve_workers_throughput():
    quick = bool(os.environ.get("BENCH_SERVE_QUICK"))
    config = BenchServeConfig.quick() if quick else BenchServeConfig()
    report = run_bench_serve(config, verbose=True)
    print("\n" + render_report(report))

    rows = {row["workers"]: row for row in report["rows"]}
    for workers, row in rows.items():
        assert row["errors"] == 0, (
            f"workers={workers}: {row['errors']} errored ops"
        )
        assert row["completed"] == row["n_ops"], (
            f"workers={workers}: only {row['completed']}/{row['n_ops']} "
            "ops completed"
        )

    if BASELINE_PATH.exists() and 1 in rows:
        ok, message = compare_to_baseline(
            report, load_report(str(BASELINE_PATH)),
            max_regression=MAX_REGRESSION, at_workers=1,
        )
        print(f"baseline check: {message}")
        assert ok, f"serve throughput regressed: {message}"

    # transport-overhead gate: applies on every box (shm rows only —
    # the socketpair fallback pays a framing/pickle round trip and is
    # known to trail on starved boxes)
    if 1 in rows and 2 in rows and rows[2].get("transport") == "shm":
        w2_vs_w1 = rows[2]["ops_per_sec"] / rows[1]["ops_per_sec"]
        print(f"transport gate: w2/w1 = {w2_vs_w1:.2f}x over shm "
              f"(floor {MIN_W2_VS_W1_SHM})")
        assert w2_vs_w1 >= MIN_W2_VS_W1_SHM, (
            f"workers=2 reached only {w2_vs_w1:.2f}x of workers=1 over the "
            "shm transport — that is transport overhead, not core "
            "starvation (two workers may tie one worker, never lose to it)"
        )

    cpus = os.cpu_count() or 1
    if cpus >= 4 and 1 in rows and 4 in rows:
        speedup = rows[4]["ops_per_sec"] / rows[1]["ops_per_sec"]
        assert speedup >= 2.0, (
            f"4 workers only {speedup:.2f}x over 1 worker on a "
            f"{cpus}-core box (need >= 2x)"
        )
    else:
        # say WHY the scaling gate did not apply, so a flat curve in the
        # CI log is not misread as a perf bug
        reason = (f"cpus={cpus} < 4" if cpus < 4
                  else "sweep lacks workers=1 and workers=4 points")
        print(f"scaling gate (>=2x at 4 workers): SKIPPED — {reason}; "
              "see headline.gate_skipped in BENCH_serve.json")

    # shared-read gate: at the 95%-GET mix the shared-memory image path
    # must beat the ring transport by >= 1.5x GET throughput — but only
    # where the frontend and the workers can actually run concurrently;
    # on a 1-cpu box the headline carries read_gate_skipped instead
    headline = report["headline"]
    shared_vs_ring = headline.get("shared_vs_ring_get_95")
    if headline.get("read_gate_skipped"):
        print("shared-read gate (>=1.5x get/s at 95% reads): SKIPPED — "
              f"{headline['read_gate_skipped']}"
              + (f" (measured {shared_vs_ring:.2f}x)"
                 if shared_vs_ring else ""))
    elif shared_vs_ring is not None:
        print(f"shared-read gate: shared/ring = {shared_vs_ring:.2f}x "
              "get/s at 95% reads (floor 1.5)")
        assert shared_vs_ring >= MIN_SHARED_VS_RING_GET, (
            f"shared read path reached only {shared_vs_ring:.2f}x of the "
            "ring's GET throughput at the 95%-read mix (need >= "
            f"{MIN_SHARED_VS_RING_GET}x) — the zero-hop path is not "
            "paying for itself"
        )

    RESULTS_DIR.mkdir(exist_ok=True)
    # refresh the committed baseline only at the shape CI compares against
    if quick:
        write_report(report, str(RESULTS_DIR / "BENCH_serve.json"))
