"""Bubbling-up insertion (Kuszmaul, arXiv 2501.02312): the load frontier.

Two claims are asserted, matching docs/performance.md:

* frontier: on the single-copy d=4 baseline with a short kick budget,
  bucket labels push the first-failure load past 0.96 while the random
  walk gives out near 0.93 — at ordinary per-insert kick cost;
* copies-load: inside McCuckoo the stash absorbs failed walks, so at d=3
  labels cannot move the frontier (the ~0.92 threshold is what it is) but
  they prove exhaustion early and slash the kicks burnt on hopeless
  inserts; at d=4 the main table itself carries 0.97.
"""

from repro.analysis import Scale
from repro.analysis.experiments import ablation_bubbling
from repro.baselines import CuckooTable
from repro.core import FailurePolicy
from repro.workloads import distinct_keys

FRONTIER_BUCKETS = 8000


def _scale(bench_scale):
    return Scale(n_single=max(400, bench_scale.n_single // 2),
                 repeats=bench_scale.repeats, n_queries=bench_scale.n_queries)


def test_ablation_bubbling(benchmark, bench_scale, save_result):
    result = ablation_bubbling(_scale(bench_scale),
                               frontier_buckets=FRONTIER_BUCKETS)
    save_result(result)

    frontier = {row["policy"]: row
                for row in result.filter_rows(section="frontier")}
    # the headline: labels move the first-failure frontier past 0.96
    # where the random walk stalls near 0.93 ...
    assert frontier["bubbling"]["fill"] >= 0.96
    assert frontier["random-walk"]["fill"] <= 0.935
    assert frontier["bubbling"]["fill"] >= frontier["mincounter"]["fill"]
    assert frontier["porat-shalem"]["fill"] >= frontier["random-walk"]["fill"]
    # ... at bounded insert cost (kicks stay O(1) per insert, not maxloop)
    for row in frontier.values():
        assert row["kicks_per_insert"] < 2.0

    by_cell = {(row["d"], row["policy"], row["load"]): row
               for row in result.filter_rows(section="copies-load")}
    top = max(row["load"] for row in result.filter_rows(section="copies-load"))
    # d=3: the threshold is below the offered load for *every* policy —
    # same main-table fill, same stash growth — but bubbling's exhaustion
    # proof stops burning the kick budget on hopeless walks
    assert abs(by_cell[(3, "bubbling", top)]["fill"]
               - by_cell[(3, "random-walk", top)]["fill"]) < 0.01
    assert (by_cell[(3, "bubbling", top)]["kicks_per_insert"]
            < by_cell[(3, "random-walk", top)]["kicks_per_insert"] * 0.5)
    # d=4: the frontier itself moves — 0.97 lands in the main table
    assert by_cell[(4, "bubbling", top)]["fill"] >= top - 0.005
    assert by_cell[(4, "bubbling", top)]["stash_items"] <= 2
    assert (by_cell[(4, "bubbling", top)]["kicks_per_insert"]
            <= by_cell[(4, "random-walk", top)]["kicks_per_insert"])

    table = CuckooTable(500, d=4, maxloop=80, seed=140,
                        on_failure=FailurePolicy.FAIL, kick_policy="bubbling")
    keys = distinct_keys(int(table.capacity * 0.95), seed=141)
    state = {"i": 0}

    def bubbling_insert():
        if state["i"] < len(keys):
            table.put(keys[state["i"]])
            state["i"] += 1
        else:
            table.lookup(keys[0])

    benchmark(bubbling_insert)
