"""Fig. 16 — lookup latency and throughput, existing & non-existing (FPGA model).

Paper shape: skipping buckets pays off more as records grow; non-existing
lookups are dramatically cheaper for the multi-copy schemes because the
counters answer most of them on-chip.
"""

from repro.analysis import fig16_lookup_latency
from repro.analysis.experiments import RECORD_SIZES


def test_fig16_lookup_latency(benchmark, bench_scale, core_sweep, save_result):
    result = fig16_lookup_latency(bench_scale, sweep=core_sweep)
    save_result(result)

    def row(scheme, population, load=0.5, record_bytes=8):
        return [
            r
            for r in result.filter_rows(
                scheme=scheme, population=population, record_bytes=record_bytes
            )
            if r["load"] == load
        ][0]

    # (b)/(d): non-existing lookups — multi-copy wins big
    assert (
        row("McCuckoo", "missing")["latency_us"]
        < row("Cuckoo", "missing")["latency_us"] * 0.5
    )
    # (a)/(c): existing lookups — at tiny 8 B records the counter-checking
    # overhead can cancel the saved bucket reads (the paper's own §IV.F
    # remark: "we can actually just skip checking the counters"); at 128 B
    # records skipping buckets must win clearly.
    assert (
        row("McCuckoo", "existing")["latency_us"]
        < row("Cuckoo", "existing")["latency_us"] * 1.25
    )
    # missing-item lookups at moderate load answer almost purely on-chip:
    # more than 4x faster than the blind d-read baseline
    assert (
        row("McCuckoo", "missing", load=0.3)["latency_us"]
        < row("Cuckoo", "missing", load=0.3)["latency_us"] / 4
    )

    # throughput gain grows with record size for existing lookups
    gains = []
    for size in RECORD_SIZES:
        mc = row("McCuckoo", "existing", record_bytes=size)["throughput_mops"]
        cu = row("Cuckoo", "existing", record_bytes=size)["throughput_mops"]
        gains.append(mc / cu)
    assert gains[-1] > gains[0]

    # timed op: the latency-model arithmetic over both populations
    cell = core_sweep[("McCuckoo", 0.5)]
    from repro.memory.latency import PAPER_FPGA

    def model_conversion():
        return PAPER_FPGA.latency_us(cell.lookup_existing) + PAPER_FPGA.latency_us(
            cell.lookup_missing
        )

    benchmark(model_conversion)
