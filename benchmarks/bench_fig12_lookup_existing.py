"""Fig. 12 — memory accesses per lookup for existing items vs load.

Paper shape: the counters let McCuckoo/B-McCuckoo skip impossible buckets,
so the average accesses stay below the single-copy schemes at every load.
"""

from repro import McCuckoo
from repro.analysis import fig12_lookup_existing
from repro.workloads import distinct_keys, sample_keys


def test_fig12_lookup_existing(benchmark, bench_scale, core_sweep, save_result):
    result = fig12_lookup_existing(bench_scale, sweep=core_sweep)
    save_result(result)

    mc = result.series("load", "offchip_accesses_per_lookup", scheme="McCuckoo")
    cu = result.series("load", "offchip_accesses_per_lookup", scheme="Cuckoo")
    for load in (0.2, 0.4, 0.6, 0.8, 0.9):
        assert mc[load] < cu[load], f"McCuckoo not cheaper at {load}"

    # The blocked variant's lookup "is more like a traditional one that does
    # not rely much on the counters" (§III.G): expect parity, not a win.
    bmc = result.series("load", "offchip_accesses_per_lookup", scheme="B-McCuckoo")
    bcht = result.series("load", "offchip_accesses_per_lookup", scheme="BCHT")
    assert bmc[0.5] <= bcht[0.5] * 1.1

    # at low load most items hold d copies -> a single probe suffices
    assert mc[0.2] < 1.5

    # timed op: lookup of existing keys at 70 % load
    table = McCuckoo(bench_scale.n_single, d=3, seed=107)
    keys = distinct_keys(int(table.capacity * 0.7), seed=108)
    for key in keys:
        table.put(key)
    probes = sample_keys(keys, 256, seed=109)
    state = {"i": 0}

    def lookup_existing():
        table.lookup(probes[state["i"] % len(probes)])
        state["i"] += 1

    benchmark(lookup_existing)
