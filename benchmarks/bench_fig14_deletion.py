"""Fig. 14 — memory accesses per deletion.

Paper shape: multi-copy schemes read somewhat more (every copy must be
located) but write exactly zero off-chip words (counters only); the
single-copy schemes always pay exactly one off-chip write.
"""

from repro import DeletionMode, McCuckoo
from repro.analysis import fig14_deletion
from repro.workloads import distinct_keys

LOADS = (0.3, 0.5, 0.7, 0.85)


def test_fig14_deletion(benchmark, bench_scale, save_result):
    result = fig14_deletion(bench_scale, loads=LOADS)
    save_result(result)

    for load in LOADS:
        rows = {row["scheme"]: row for row in result.filter_rows(load=load)}
        assert rows["McCuckoo"]["writes_per_delete"] == 0
        assert rows["B-McCuckoo"]["writes_per_delete"] == 0
        assert rows["Cuckoo"]["writes_per_delete"] == 1
        assert rows["BCHT"]["writes_per_delete"] == 1
    # multi-copy reads more at low load (more copies to confirm)
    low = {row["scheme"]: row for row in result.filter_rows(load=0.3)}
    assert low["McCuckoo"]["reads_per_delete"] > low["Cuckoo"]["reads_per_delete"]

    # timed op: delete+reinsert cycle at 70 % load
    table = McCuckoo(bench_scale.n_single, d=3, seed=113,
                     deletion_mode=DeletionMode.RESET)
    keys = distinct_keys(int(table.capacity * 0.7), seed=114)
    for key in keys:
        table.put(key)
    victim = keys[0]

    def delete_reinsert_cycle():
        table.delete(victim)
        table.put(victim)

    benchmark(delete_reinsert_cycle)
