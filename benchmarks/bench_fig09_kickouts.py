"""Fig. 9 — kick-outs per insertion vs load ratio, all four schemes.

Paper shape: multi-copy schemes kick far less at high load (−59.3 % for
ternary cuckoo at 85 %, −77.9 % for blocked at 95 %).
"""

from repro.analysis import fig9_kickouts
from repro.workloads import distinct_keys


def test_fig9_kickouts(benchmark, bench_scale, core_sweep, save_result):
    result = fig9_kickouts(bench_scale, sweep=core_sweep)
    save_result(result)

    cuckoo = result.series("load", "kicks_per_insert", scheme="Cuckoo")
    mccuckoo = result.series("load", "kicks_per_insert", scheme="McCuckoo")
    bcht = result.series("load", "kicks_per_insert", scheme="BCHT")
    blocked = result.series("load", "kicks_per_insert", scheme="B-McCuckoo")

    # headline reductions
    assert mccuckoo[0.85] < cuckoo[0.85] * 0.7
    assert blocked[0.95] < bcht[0.95] * 0.5
    # everyone is kick-free when nearly empty
    assert cuckoo[0.1] == mccuckoo[0.1] == 0

    # timed op: insert+delete cycle on an 85 %-loaded McCuckoo table (the
    # delete keeps the load stable across benchmark iterations)
    from repro import DeletionMode, McCuckoo

    table = McCuckoo(bench_scale.n_single, d=3, maxloop=bench_scale.maxloop,
                     seed=99, deletion_mode=DeletionMode.RESET)
    keys = distinct_keys(int(table.capacity * 0.85) + 1, seed=100)
    for key in keys[:-1]:
        table.put(key)
    probe = keys[-1]

    def insert_delete_cycle():
        table.put(probe)
        table.delete(probe)

    benchmark(insert_delete_cycle)
