"""Fig. 13 — memory accesses per lookup for non-existing items vs load.

Paper shape: single-copy schemes must read all d buckets to conclude
absence; the multi-copy schemes answer mostly from the on-chip counters
(zero accesses at low/moderate load), with the blocked variant's advantage
fading as the table approaches full.
"""

import pytest

from repro import McCuckoo
from repro.analysis import fig13_lookup_missing
from repro.workloads import distinct_keys, missing_keys


def test_fig13_lookup_missing(benchmark, bench_scale, core_sweep, save_result):
    result = fig13_lookup_missing(bench_scale, sweep=core_sweep)
    save_result(result)

    mc = result.series("load", "offchip_accesses_per_lookup", scheme="McCuckoo")
    cu = result.series("load", "offchip_accesses_per_lookup", scheme="Cuckoo")
    bmc = result.series("load", "offchip_accesses_per_lookup", scheme="B-McCuckoo")
    bcht = result.series("load", "offchip_accesses_per_lookup", scheme="BCHT")

    # blind baselines: always exactly d bucket reads
    for value in cu.values():
        assert value == pytest.approx(3.0)
    for value in bcht.values():
        assert value == pytest.approx(3.0)

    # counters screen almost everything at low/moderate load
    assert mc[0.2] < 0.5
    assert mc[0.5] < 1.2
    for load in mc:
        assert mc[load] < cu[load]
    # blocked advantage fades near full (paper's remark in §IV.C)
    assert bmc[0.98] > bmc[0.5]

    # timed op: missing-item lookup at 50 % load (mostly on-chip)
    table = McCuckoo(bench_scale.n_single, d=3, seed=110)
    keys = distinct_keys(int(table.capacity * 0.5), seed=111)
    for key in keys:
        table.put(key)
    absent = missing_keys(256, set(keys), seed=112)
    state = {"i": 0}

    def lookup_missing():
        table.lookup(absent[state["i"] % len(absent)])
        state["i"] += 1

    benchmark(lookup_missing)
