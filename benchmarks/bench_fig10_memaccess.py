"""Fig. 10 — off-chip reads (a) and writes (b) per insertion vs load.

Paper shape: multi-copy reads ≈0 at low load and always below single-copy;
multi-copy writes higher at low load with a crossover near half load.
"""

from repro import McCuckoo
from repro.analysis import fig10_memaccess
from repro.workloads import distinct_keys


def test_fig10_memaccess(benchmark, bench_scale, core_sweep, save_result):
    result = fig10_memaccess(bench_scale, sweep=core_sweep)
    save_result(result)

    mc_reads = result.series("load", "reads_per_insert", scheme="McCuckoo")
    cu_reads = result.series("load", "reads_per_insert", scheme="Cuckoo")
    mc_writes = result.series("load", "writes_per_insert", scheme="McCuckoo")
    cu_writes = result.series("load", "writes_per_insert", scheme="Cuckoo")

    # (a) reads: multi-copy near zero at low load, below single-copy always
    assert mc_reads[0.1] < 0.2
    for load in (0.1, 0.3, 0.5, 0.7, 0.85):
        assert mc_reads[load] < cu_reads[load]
    # (b) writes: multi-copy pays redundancy early, wins (or ties) late
    assert mc_writes[0.1] > cu_writes[0.1]
    crossover = min(
        (load for load in sorted(mc_writes) if mc_writes[load] <= cu_writes[load] * 1.1),
        default=None,
    )
    assert crossover is not None and crossover <= 0.7

    blocked_reads = result.series("load", "reads_per_insert", scheme="B-McCuckoo")
    bcht_reads = result.series("load", "reads_per_insert", scheme="BCHT")
    assert blocked_reads[0.9] < bcht_reads[0.9]

    # timed op: low-load insertion (the multi-copy redundant-write path)
    table = McCuckoo(bench_scale.n_single, d=3, seed=101)
    fresh = distinct_keys(int(table.capacity * 0.3), seed=102)
    state = {"i": 0}

    def insert_low_load():
        if state["i"] < len(fresh):
            table.put(fresh[state["i"]])
            state["i"] += 1
        else:
            table.lookup(fresh[0])

    benchmark(insert_low_load)
