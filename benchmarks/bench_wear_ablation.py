"""Ablation: bucket write-wear under the three kick policies.

Flash/NVM lifetime is decided by the hottest bucket (Eppstein et al.,
arXiv 1404.0286), so the metric is **max** per-bucket writes — the total
is fixed by the workload, only the distribution moves.  The wear-aware
policy must level the surface relative to random-walk without paying a
drastic kick overhead.
"""

from repro import McCuckoo, WearAwarePolicy
from repro.analysis import Scale, ablation_wear_policy
from repro.memory.wear import WearMeter
from repro.workloads import distinct_keys


def _scale(bench_scale):
    return Scale(n_single=max(400, bench_scale.n_single // 2),
                 repeats=bench_scale.repeats, n_queries=bench_scale.n_queries)


def test_ablation_wear_policy(benchmark, bench_scale, save_result):
    result = ablation_wear_policy(_scale(bench_scale))
    save_result(result)

    for load in (0.85, 0.9):
        rows = {row["policy"]: row for row in result.filter_rows(load=load)}
        # leveling: the wear-aware policy may not exceed random-walk's
        # hottest bucket, and must keep a flatter max/mean surface
        assert (rows["wear-aware"]["max_wear"]
                <= rows["random-walk"]["max_wear"])
        assert (rows["wear-aware"]["wear_imbalance"]
                <= rows["random-walk"]["wear_imbalance"] * 1.05)
        # the leveling must not cost a drastic kick overhead
        assert (rows["wear-aware"]["kicks_per_insert"]
                <= rows["random-walk"]["kicks_per_insert"] * 1.5 + 0.05)

    # wear accounting invariant: the meter sees every off-chip bucket
    # write regardless of policy, so totals match the memory model's story
    meter = WearMeter()
    table = McCuckoo(300, d=3, seed=124, kick_policy=WearAwarePolicy(),
                     wear_meter=meter)
    keys = distinct_keys(int(table.capacity * 0.85), seed=125)
    state = {"i": 0}

    def wear_aware_insert():
        if state["i"] < len(keys):
            table.put(keys[state["i"]])
            state["i"] += 1
        else:
            table.lookup(keys[0])

    benchmark(wear_aware_insert)
    assert meter.total_writes > 0
    assert meter.max_wear >= 1
