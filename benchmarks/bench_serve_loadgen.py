"""Serving-path benchmark: loopback ops/sec and tail latency.

Unlike the paper-exhibit benchmarks, this one measures the *system* the
reproduction has grown into: the asyncio TCP server (one writer per shard,
bounded queues) driven closed-loop by the async client.  It saves a small
markdown table of ops/sec and p50/p95/p99 per workload and times one
round trip with pytest-benchmark.
"""

import asyncio
import pathlib

from repro.serve import (
    LoadgenConfig,
    McCuckooClient,
    McCuckooServer,
    ServerConfig,
    run_loadgen,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

WORKLOADS = ("zipf", "uniform", "ycsb-A", "ycsb-C")

#: batch sizes for the BATCH-framing sweep (1 = the scalar-framing baseline)
BATCH_SIZES = (1, 8, 32)


def test_serve_loadgen(benchmark):
    async def sweep():
        rows = []
        batch_rows = []
        cfg = ServerConfig(n_shards=4, expected_items=16384)
        async with McCuckooServer(cfg) as server:
            host, port = server.address
            for workload in WORKLOADS:
                report = await run_loadgen(
                    host, port,
                    LoadgenConfig(workload=workload, n_ops=4000, n_keys=1000,
                                  concurrency=8, seed=17),
                )
                assert report.completed == report.n_ops
                assert report.errors == 0
                rows.append(report)
            for batch_size in BATCH_SIZES:
                report = await run_loadgen(
                    host, port,
                    LoadgenConfig(workload="zipf", n_ops=8000, n_keys=1000,
                                  concurrency=8, batch_size=batch_size,
                                  seed=23),
                )
                assert report.completed == report.n_ops
                assert report.errors == 0
                batch_rows.append((batch_size, report))
        return rows, batch_rows

    rows, batch_rows = asyncio.run(sweep())

    lines = [
        "# serve-loadgen — loopback serving path",
        "",
        "| workload | ops/s | p50 ms | p95 ms | p99 ms |",
        "|---|---|---|---|---|",
    ]
    for report in rows:
        lines.append(
            f"| {report.workload} | {report.ops_per_sec:,.0f} "
            f"| {report.p50_ms:.3f} | {report.p95_ms:.3f} "
            f"| {report.p99_ms:.3f} |"
        )
        print(report.render())
    scalar_ops = batch_rows[0][1].ops_per_sec
    lines += [
        "",
        "## batched BATCH framing (zipf, 8 workers)",
        "",
        "Per-op latency is the frame round-trip divided by its batch size;",
        "batches route reads through the store's bulk lookup kernel and",
        "enqueue each shard's writes as one writer-queue item.",
        "",
        "| batch | ops/s | vs batch=1 | p50 ms/op | p99 ms/op |",
        "|---|---|---|---|---|",
    ]
    for batch_size, report in batch_rows:
        lines.append(
            f"| {batch_size} | {report.ops_per_sec:,.0f} "
            f"| {report.ops_per_sec / scalar_ops:.2f}x "
            f"| {report.p50_ms:.3f} | {report.p99_ms:.3f} |"
        )
        print(f"batch={batch_size}: {report.ops_per_sec:,.0f} ops/s")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "serve-loadgen.md").write_text("\n".join(lines) + "\n",
                                                  encoding="utf-8")

    # timed op: one full GET round trip over an established connection
    async def setup():
        server = McCuckooServer(ServerConfig(n_shards=2))
        await server.start()
        host, port = server.address
        client = McCuckooClient(host, port, pool_size=1)
        await client.put(42, b"value")
        return server, client

    loop = asyncio.new_event_loop()
    server, client = loop.run_until_complete(setup())
    try:
        benchmark(lambda: loop.run_until_complete(client.get(42)))
    finally:
        loop.run_until_complete(client.close())
        loop.run_until_complete(server.stop())
        loop.close()
