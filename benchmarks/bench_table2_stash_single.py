"""Table II — stash statistics for 3-hash 1-slot McCuckoo at 88-93 % load.

Paper shape: the stash is empty (or nearly) at 88 %, ramps steeply toward
93 % (reaching ~1 % of all items), the larger maxloop keeps it smaller at
any load, and the fraction of non-existing-item lookups that actually
visit the stash stays essentially 0 %.
"""

from repro import McCuckoo
from repro.analysis import table2_stash_single
from repro.workloads import key_stream

LOADS = (0.88, 0.89, 0.90, 0.91, 0.92, 0.93)
MAXLOOPS = (200, 500)


def test_table2_stash_single(benchmark, bench_scale, save_result):
    result = table2_stash_single(bench_scale, loads=LOADS, maxloops=MAXLOOPS)
    save_result(result)

    for maxloop in MAXLOOPS:
        series = result.series("load", "stash_items", maxloop=maxloop)
        assert series[0.93] > series[0.88], "stash must ramp with load"
    # larger maxloop defers stash growth (summed over the sweep to dampen
    # the noise of individual saturation-edge points)
    small = result.series("load", "stash_items", maxloop=200)
    large = result.series("load", "stash_items", maxloop=500)
    assert sum(large.values()) <= sum(small.values()) * 1.1
    # screened stash is essentially never visited by missing lookups
    for row in result.rows:
        assert row["stash_visit_pct_missing_lookups"] < 0.5
    # stash stays a tiny fraction of all items
    for row in result.rows:
        assert row["stash_pct_of_items"] < 5.0

    # timed op: overload insertion straight into the stash path (maxloop 0)
    table = McCuckoo(32, d=3, seed=115, maxloop=0)
    keys = key_stream(seed=116)
    for _ in range(table.capacity):
        table.put(next(keys))

    def stash_path_insert():
        table.put(next(keys))

    benchmark(stash_path_insert)
