"""Shared fixtures for the benchmark suite.

Every ``bench_*`` module reproduces one table or figure of the paper: it
computes the experiment's series, prints it in the paper's shape, saves the
rendered table under ``benchmarks/results/`` (the source for
EXPERIMENTS.md), asserts the expected qualitative shape, and times a
representative operation with pytest-benchmark.

The expensive load sweep shared by Figs. 9/10/12/13/15/16 is computed once
per session.
"""

import pathlib

import pytest

from repro.analysis import Scale, render, run_core_sweep, to_markdown

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

BENCH_SCALE = Scale(n_single=1200, repeats=2, n_queries=1000)


@pytest.fixture(scope="session")
def bench_scale() -> Scale:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def core_sweep(bench_scale):
    return run_core_sweep(bench_scale)


@pytest.fixture(scope="session")
def save_result():
    """Print an ExperimentResult and persist it for EXPERIMENTS.md."""

    def _save(result):
        text = render(result)
        print("\n" + text)
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{result.experiment_id}.md"
        path.write_text(to_markdown(result) + "\n", encoding="utf-8")
        return text

    return _save
