"""Plot the committed benchmark CSVs (SVG always, PNG when matplotlib exists).

Every ``benchmarks/results/*.csv`` becomes one chart under
``benchmarks/results/plots/``.  A small per-file spec picks the x column,
the y column and the series-grouping columns; files without a spec fall
back to plotting every numeric column against the row index.

The renderer is dependency-free: charts are written as hand-rolled SVG so
the script works on the bare CI image.  When matplotlib happens to be
installed, a PNG twin of each chart is emitted as well — there is no hard
dependency on it.

    python benchmarks/plot.py                    # all results/*.csv
    python benchmarks/plot.py results/BENCH_core.csv -o /tmp/plots
"""

from __future__ import annotations

import argparse
import csv
import pathlib
import sys
from typing import Dict, List, Optional, Sequence, Tuple

try:  # optional; the SVG path below never needs it
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt
except ImportError:  # pragma: no cover - depends on the host image
    plt = None

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: stem -> (x column, y column, series-grouping columns).  The series label
#: is the joined values of the grouping columns, one polyline per label.
SPECS: Dict[str, Tuple[str, str, Tuple[str, ...]]] = {
    "BENCH_core": ("load", "ops_per_sec", ("phase", "batch", "backend")),
    "BENCH_core_highload_rows": (
        "load", "ops_per_sec", ("phase", "batch", "backend")),
    "BENCH_serve": ("workers", "ops_per_sec", ("transport", "read_path")),
    "BENCH_serve_read_mix_rows": (
        "get_ratio", "ops_per_sec", ("transport", "read_path")),
    "BENCH_recovery": ("ops", "speedup", ()),
}

PALETTE = ("#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
           "#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf")


def _to_float(text: str) -> Optional[float]:
    try:
        return float(text)
    except (TypeError, ValueError):
        return None


def read_rows(csv_path: pathlib.Path) -> List[Dict[str, str]]:
    with open(csv_path, newline="", encoding="utf-8") as handle:
        return list(csv.DictReader(handle))


def build_series(
    rows: List[Dict[str, str]], stem: str
) -> Tuple[str, str, Dict[str, List[Tuple[float, float]]]]:
    """(x label, y label, {series label: sorted (x, y) points})."""
    spec = SPECS.get(stem)
    if spec is not None and rows and all(c in rows[0] for c in spec[:2]):
        x_col, y_col, group_cols = spec
        series: Dict[str, List[Tuple[float, float]]] = {}
        for row in rows:
            x, y = _to_float(row.get(x_col)), _to_float(row.get(y_col))
            if x is None or y is None:
                continue
            label = "/".join(str(row.get(col, "")) for col in group_cols
                             if row.get(col) not in (None, ""))
            series.setdefault(label or y_col, []).append((x, y))
        for points in series.values():
            points.sort()
        return x_col, y_col, series
    # fallback: every numeric column vs row index
    series = {}
    for row_index, row in enumerate(rows):
        for col, raw in row.items():
            y = _to_float(raw)
            if y is not None:
                series.setdefault(col, []).append((float(row_index), y))
    return "row", "value", series


def _ticks(lo: float, hi: float, n: int = 5) -> List[float]:
    if hi <= lo:
        return [lo]
    step = (hi - lo) / (n - 1)
    return [lo + i * step for i in range(n)]


def _fmt(value: float) -> str:
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 10:
        return f"{value:.1f}".rstrip("0").rstrip(".")
    return f"{value:.3f}".rstrip("0").rstrip(".") or "0"


def render_svg(title: str, x_label: str, y_label: str,
               series: Dict[str, List[Tuple[float, float]]],
               width: int = 720, height: int = 440) -> str:
    """A minimal multi-series line chart as a standalone SVG document."""
    margin_l, margin_r, margin_t, margin_b = 80, 180, 40, 50
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b
    points = [p for pts in series.values() for p in pts]
    if not points:
        return (f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
                f'height="{height}"><text x="20" y="30">{title}: '
                f'no numeric data</text></svg>')
    xs, ys = [p[0] for p in points], [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(min(ys), 0.0), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    def sx(x: float) -> float:
        return margin_l + (x - x_lo) / (x_hi - x_lo) * plot_w

    def sy(y: float) -> float:
        return margin_t + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{margin_l}" y="24" font-size="15" '
        f'font-weight="bold">{title}</text>',
    ]
    for tick in _ticks(y_lo, y_hi):
        y = sy(tick)
        parts.append(f'<line x1="{margin_l}" y1="{y:.1f}" '
                     f'x2="{margin_l + plot_w}" y2="{y:.1f}" '
                     f'stroke="#dddddd"/>')
        parts.append(f'<text x="{margin_l - 8}" y="{y + 4:.1f}" '
                     f'text-anchor="end">{_fmt(tick)}</text>')
    for tick in _ticks(x_lo, x_hi):
        x = sx(tick)
        parts.append(f'<line x1="{x:.1f}" y1="{margin_t + plot_h}" '
                     f'x2="{x:.1f}" y2="{margin_t + plot_h + 4}" '
                     f'stroke="#333333"/>')
        parts.append(f'<text x="{x:.1f}" y="{margin_t + plot_h + 18}" '
                     f'text-anchor="middle">{_fmt(tick)}</text>')
    parts.append(f'<rect x="{margin_l}" y="{margin_t}" width="{plot_w}" '
                 f'height="{plot_h}" fill="none" stroke="#333333"/>')
    parts.append(f'<text x="{margin_l + plot_w / 2:.1f}" '
                 f'y="{height - 10}" text-anchor="middle">{x_label}</text>')
    parts.append(f'<text x="18" y="{margin_t + plot_h / 2:.1f}" '
                 f'text-anchor="middle" transform="rotate(-90 18 '
                 f'{margin_t + plot_h / 2:.1f})">{y_label}</text>')
    for index, (label, pts) in enumerate(sorted(series.items())):
        color = PALETTE[index % len(PALETTE)]
        path = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in pts)
        parts.append(f'<polyline points="{path}" fill="none" '
                     f'stroke="{color}" stroke-width="1.8"/>')
        for x, y in pts:
            parts.append(f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" '
                         f'r="2.4" fill="{color}"/>')
        ly = margin_t + 14 + index * 16
        lx = margin_l + plot_w + 12
        parts.append(f'<line x1="{lx}" y1="{ly - 4}" x2="{lx + 18}" '
                     f'y2="{ly - 4}" stroke="{color}" stroke-width="2"/>')
        parts.append(f'<text x="{lx + 24}" y="{ly}">{label}</text>')
    parts.append("</svg>")
    return "\n".join(parts)


def render_png(png_path: pathlib.Path, title: str, x_label: str,
               y_label: str,
               series: Dict[str, List[Tuple[float, float]]]) -> bool:
    if plt is None:
        return False
    figure, axes = plt.subplots(figsize=(8, 5))
    for label, pts in sorted(series.items()):
        axes.plot([p[0] for p in pts], [p[1] for p in pts],
                  marker="o", markersize=3, label=label)
    axes.set_title(title)
    axes.set_xlabel(x_label)
    axes.set_ylabel(y_label)
    axes.grid(True, alpha=0.3)
    axes.legend(fontsize=8, loc="best")
    figure.tight_layout()
    figure.savefig(png_path, dpi=120)
    plt.close(figure)
    return True


def plot_file(csv_path: pathlib.Path, out_dir: pathlib.Path) -> List[pathlib.Path]:
    rows = read_rows(csv_path)
    stem = csv_path.stem
    x_label, y_label, series = build_series(rows, stem)
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    svg_path = out_dir / f"{stem}.svg"
    svg_path.write_text(
        render_svg(stem, x_label, y_label, series), encoding="utf-8")
    written.append(svg_path)
    png_path = out_dir / f"{stem}.png"
    if render_png(png_path, stem, x_label, y_label, series):
        written.append(png_path)
    return written


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("inputs", nargs="*", type=pathlib.Path,
                        help="result CSVs (default: all committed CSVs "
                             "under benchmarks/results/)")
    parser.add_argument("-o", "--out-dir", type=pathlib.Path,
                        default=RESULTS_DIR / "plots",
                        help="output directory (default: results/plots/)")
    args = parser.parse_args(argv)
    inputs = args.inputs or sorted(RESULTS_DIR.glob("*.csv"))
    if not inputs:
        print("plot: no CSV inputs found", file=sys.stderr)
        return 2
    status = 0
    for csv_path in inputs:
        try:
            written = plot_file(csv_path, args.out_dir)
        except (OSError, csv.Error) as error:
            print(f"plot: {csv_path}: {error}", file=sys.stderr)
            status = 1
            continue
        for path in written:
            print(f"{csv_path.name} -> {path}")
    if plt is None:
        print("plot: matplotlib not installed; SVG only", file=sys.stderr)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
