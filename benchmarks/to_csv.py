"""Convert the committed BENCH_*.json baselines to CSV.

Every harness document (``BENCH_core.json``, ``BENCH_serve.json``,
``BENCH_recovery.json``) is a dict whose list-of-dict values are row
tables (``rows``, and for bench-serve also ``read_mix_rows``).  Each
table becomes one CSV file named ``<stem>.csv`` / ``<stem>_<table>.csv``
with the union of row keys as the header, so downstream plotting and
spreadsheet diffing need no knowledge of any specific harness's schema.

    python benchmarks/to_csv.py                      # all results/*.json
    python benchmarks/to_csv.py results/BENCH_serve.json -o /tmp/csv
"""

import argparse
import csv
import json
import pathlib
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def row_tables(document):
    """Yield ``(table_name, rows)`` for every list-of-dicts value."""
    for key, value in document.items():
        if (isinstance(value, list) and value
                and all(isinstance(item, dict) for item in value)):
            yield key, value


def union_header(rows):
    header = []
    for row in rows:
        for key in row:
            if key not in header:
                header.append(key)
    return header


def convert(json_path: pathlib.Path, out_dir: pathlib.Path) -> list:
    with open(json_path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict):
        raise ValueError(f"{json_path}: expected a JSON object document")
    written = []
    tables = list(row_tables(document))
    for name, rows in tables:
        # the primary table keeps the bare stem; extras are suffixed
        suffix = "" if name == "rows" else f"_{name}"
        csv_path = out_dir / f"{json_path.stem}{suffix}.csv"
        header = union_header(rows)
        with open(csv_path, "w", encoding="utf-8", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=header,
                                    restval="", extrasaction="ignore")
            writer.writeheader()
            writer.writerows(rows)
        written.append((csv_path, len(rows)))
    return written


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("inputs", nargs="*", type=pathlib.Path,
                        help="BENCH_*.json files (default: all committed "
                             "baselines under benchmarks/results/)")
    parser.add_argument("-o", "--out-dir", type=pathlib.Path, default=None,
                        help="output directory (default: next to each input)")
    args = parser.parse_args(argv)

    inputs = args.inputs or sorted(RESULTS_DIR.glob("BENCH_*.json"))
    if not inputs:
        print("to_csv: no BENCH_*.json inputs found", file=sys.stderr)
        return 2
    status = 0
    for json_path in inputs:
        out_dir = args.out_dir if args.out_dir is not None else json_path.parent
        out_dir.mkdir(parents=True, exist_ok=True)
        try:
            written = convert(json_path, out_dir)
        except (OSError, ValueError, json.JSONDecodeError) as error:
            print(f"to_csv: {json_path}: {error}", file=sys.stderr)
            status = 1
            continue
        for csv_path, n_rows in written:
            print(f"{json_path.name} -> {csv_path} ({n_rows} rows)")
        if not written:
            print(f"to_csv: {json_path.name}: no row tables found",
                  file=sys.stderr)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
